// Function effect summaries (interprocedural analysis, step 2).
//
// A FunctionSummary is the aggregate effect of calling a function once,
// expressed in *function-entry terms*: formal integer parameters and the
// global scalars the callee reads appear as their own sym atoms, so a call
// site can instantiate the summary by substituting the actuals (and the
// caller's current values of the globals) for those atoms via the arena's
// memoized subst machinery. The summary carries:
//
//   * scalar_finals — end-of-call value of every global integer scalar the
//     function may write (λ-style: entry-relative, so `head = head + d`
//     summarizes as final(head) = sym(head) + ...),
//   * writes/reads — the function's array access effects, aggregated across
//     its loops exactly as core::Analyzer aggregates a loop body (a call
//     site replays them as if the statements were inlined),
//   * end_facts — the index-array property facts (Value/Step/Injective/
//     Identity) provable at function exit from an EMPTY entry fact database.
//     Summaries are context-insensitive: facts that would need caller
//     context do not appear (sound — fewer facts, never wrong facts),
//   * return_value — the returned range for int functions,
//   * may_write sets — a conservative write set (transitive over callees)
//     that stays valid even for unanalyzable functions; the analyzer's havoc
//     paths use it so an opaque call degrades soundly instead of silently
//     under-killing.
//
// Summaries are computed bottom-up over the CallGraph's reverse topological
// order and cached in a SummaryDB keyed on (function, AnalyzerOptions).
// The DB is owned by pipeline::Session, so re-analysis under options the
// session has already run — the ablation loop, parallelize-after-analyze,
// repeated stage calls — reuses summaries instead of recomputing them.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/analyzer.h"
#include "support/source_location.h"

namespace sspar::ipa {

struct FunctionSummary {
  const ast::FuncDecl* function = nullptr;

  // --- Conservative may-write sets: valid even when !analyzable -------------
  std::set<const ast::VarDecl*> may_write_scalars;  // global scalars, any type
  std::set<const ast::VarDecl*> may_write_arrays;   // global arrays
  bool writes_array_params = false;  // stores through a formal array parameter
  // Unknown callee somewhere in the transitive call tree: effects unbounded.
  bool opaque = false;

  // --- Analyzability ---------------------------------------------------------
  bool analyzable = false;
  std::string failure;  // why not (human-readable; used in W0301 and blockers)
  support::SourceLocation failure_location;

  // --- Effects, in function-entry terms (valid when analyzable) --------------
  std::map<const ast::VarDecl*, sym::Range> scalar_finals;  // global int scalars
  // Global scalars assigned on EVERY path through the function (syntactic,
  // conservative). A call site must join the final of any scalar NOT in this
  // set with the pre-call value — on skip paths the old value survives, which
  // in a caller loop is a λ-dependence exactly like a conditionally assigned
  // inlined scalar.
  std::set<const ast::VarDecl*> definite_scalar_writes;
  std::vector<core::ArrayWriteEffect> writes;
  std::vector<core::ArrayWriteEffect> reads;
  core::FactDB end_facts;
  std::optional<sym::Range> return_value;  // int-returning functions only
  // Global scalars the function may read before writing them (conservative
  // superset); call sites read these for λ-tracking and value binding.
  std::set<const ast::VarDecl*> exposed_scalar_reads;
};

// Per-session cache of function summaries keyed on (function, options).
// Entries intern expressions in the session's arena, so they stay valid for
// the session's lifetime and across re-analysis with different options.
class SummaryDB {
 public:
  struct Stats {
    size_t computed = 0;      // summaries built from scratch (cache misses)
    size_t hits = 0;          // compute-time requests served from the cache
    size_t applications = 0;  // call sites where a summary was applied
    size_t requests() const { return computed + hits; }
  };

  // Plain lookup (no stats); null on miss. Pointers stay valid until clear().
  const FunctionSummary* find(const ast::FuncDecl* function,
                              const core::AnalyzerOptions& options) const;
  // Compute-time lookup: counts a hit when present.
  const FunctionSummary* lookup(const ast::FuncDecl* function,
                                const core::AnalyzerOptions& options);
  // Counts a miss; overwrites any existing entry.
  const FunctionSummary& insert(const ast::FuncDecl* function,
                                const core::AnalyzerOptions& options,
                                FunctionSummary summary);

  void note_application() { ++stats_.applications; }

  const Stats& stats() const { return stats_; }
  size_t size() const { return entries_.size(); }

  // Drops every summary (they reference AST nodes and arena expressions the
  // owner is about to release) and resets the stats.
  void clear();

 private:
  // AnalyzerOptions is a struct of independent feature bits; encode them into
  // an integer key. Every new option must be added here (a missed bit would
  // alias two configurations onto one cache slot).
  static uint32_t encode(const core::AnalyzerOptions& options);

  using Key = std::pair<const ast::FuncDecl*, uint32_t>;
  std::map<Key, FunctionSummary> entries_;
  Stats stats_;
};

// Instantiates summary expressions at one call site: substitutes actuals for
// formal scalar atoms, the caller's current values for the callee's exposed
// global reads, and remaps formal array parameters onto the actual arrays.
// Exact substitution only — apply() returns null whenever the result would
// need a non-exact binding (the caller then degrades that bound to unbounded,
// which is sound). Reads of arrays marked stale (already written by the
// caller's current loop body) degrade the same way.
class SummaryApplier {
 public:
  // Binds sym(id) (formal int param or exposed global) to the caller value.
  void bind(sym::SymbolId id, sym::Range value);
  // Maps a formal array parameter onto the actual array at the call site.
  void bind_array(const ast::VarDecl* formal, const ast::VarDecl* actual);
  // Marks an array (post-remap symbol) whose elements are stale in summary
  // expressions because the caller's body already wrote it.
  void mark_stale(sym::SymbolId array);

  // Exact instantiation; null if any required binding is missing, non-exact,
  // or reads a stale array element.
  sym::ExprPtr apply(const sym::ExprPtr& e) const;
  // Per-bound instantiation: a failed bound becomes unbounded (null).
  sym::Range apply(const sym::Range& r) const;

  const ast::VarDecl* remap_array(const ast::VarDecl* array) const;
  sym::SymbolId remap_array_symbol(sym::SymbolId array) const;

 private:
  std::map<sym::SymbolId, sym::Range> bindings_;
  std::map<const ast::VarDecl*, const ast::VarDecl*> array_map_;
  std::map<sym::SymbolId, sym::SymbolId> array_symbol_map_;
  std::set<sym::SymbolId> stale_arrays_;
};

}  // namespace sspar::ipa
