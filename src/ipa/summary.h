// Function effect summaries (interprocedural analysis, step 2).
//
// A FunctionSummary is the aggregate effect of calling a function once,
// expressed in *function-entry terms*: formal integer parameters and the
// global scalars the callee reads appear as their own sym atoms, so a call
// site can instantiate the summary by substituting the actuals (and the
// caller's current values of the globals) for those atoms via the arena's
// memoized subst machinery. The summary carries:
//
//   * scalar_finals — end-of-call value of every global integer scalar the
//     function may write (λ-style: entry-relative, so `head = head + d`
//     summarizes as final(head) = sym(head) + ...),
//   * writes/reads — the function's array access effects, aggregated across
//     its loops exactly as core::Analyzer aggregates a loop body (a call
//     site replays them as if the statements were inlined),
//   * end_facts — the index-array property facts (Value/Step/Injective/
//     Identity) provable at function exit. The BASE summary (entry-fact
//     fingerprint 0) is computed from an EMPTY entry fact database: facts
//     that would need caller context do not appear (sound — fewer facts,
//     never wrong facts). When a call site's caller holds facts about
//     arrays the callee reads, the analyzer re-summarizes the callee under
//     a projection of those facts (context sensitivity); such summaries
//     carry the projection's fingerprint and their end_facts may include
//     properties only provable in that context (e.g. Monotonic_inc of
//     rowstr when a different helper established nzz >= 0),
//   * return_value — the returned range for int functions,
//   * may_write sets — a conservative write set (transitive over callees)
//     that stays valid even for unanalyzable functions; the analyzer's havoc
//     paths use it so an opaque call degrades soundly instead of silently
//     under-killing.
//
// Summaries are computed bottom-up over the CallGraph's reverse topological
// order and cached in a SummaryDB keyed on (function, AnalyzerOptions,
// entry-fact fingerprint). The DB is owned by pipeline::Session, so
// re-analysis under options the session has already run — the ablation
// loop, parallelize-after-analyze, repeated stage calls, repeated call
// sites under the same caller facts — reuses summaries instead of
// recomputing them. A SummaryDB may additionally be attached to a
// CrossProgramCache (ipa/cross_cache.h): per-session misses then consult
// the content-addressed shared cache before computing, which lets the batch
// driver reuse summaries of byte-identical helpers across corpus entries.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "core/analyzer.h"
#include "support/source_location.h"

namespace sspar::ipa {

struct FunctionSummary {
  const ast::FuncDecl* function = nullptr;

  // --- Conservative may-write sets: valid even when !analyzable -------------
  std::set<const ast::VarDecl*> may_write_scalars;  // global scalars, any type
  std::set<const ast::VarDecl*> may_write_arrays;   // global arrays
  bool writes_array_params = false;  // stores through a formal array parameter
  // Unknown callee somewhere in the transitive call tree: effects unbounded.
  bool opaque = false;

  // --- Analyzability ---------------------------------------------------------
  bool analyzable = false;
  std::string failure;  // why not (human-readable; used in W0301 and blockers)
  support::SourceLocation failure_location;

  // --- Effects, in function-entry terms (valid when analyzable) --------------
  std::map<const ast::VarDecl*, sym::Range> scalar_finals;  // global int scalars
  // Global scalars assigned on EVERY path through the function (syntactic,
  // conservative). A call site must join the final of any scalar NOT in this
  // set with the pre-call value — on skip paths the old value survives, which
  // in a caller loop is a λ-dependence exactly like a conditionally assigned
  // inlined scalar.
  std::set<const ast::VarDecl*> definite_scalar_writes;
  std::vector<core::ArrayWriteEffect> writes;
  std::vector<core::ArrayWriteEffect> reads;
  core::FactDB end_facts;
  std::optional<sym::Range> return_value;  // int-returning functions only
  // Global scalars the function may read before writing them (conservative
  // superset); call sites read these for λ-tracking and value binding.
  std::set<const ast::VarDecl*> exposed_scalar_reads;
  // Fingerprint of the entry-fact projection this summary was computed
  // under; 0 = base (empty entry fact database). See cross_cache.h's
  // fingerprint_facts for the encoding.
  uint64_t entry_fingerprint = 0;
};

class CrossProgramCache;

// Per-session cache of function summaries keyed on (function, options,
// entry-fact fingerprint). Entries intern expressions in the session's
// arena, so they stay valid for the session's lifetime and across
// re-analysis with different options.
class SummaryDB {
 public:
  struct Stats {
    size_t computed = 0;      // summaries built from scratch in this session
    size_t hits = 0;          // compute-time requests served from this cache
    size_t applications = 0;  // call sites where a summary was applied
    // Context-sensitive summaries (entry-fact fingerprint != 0) entered into
    // this session's DB, whether computed locally or rehydrated from the
    // shared cache (so the count is scheduling-independent).
    size_t context_computed = 0;
    // Interactions with an attached CrossProgramCache: summaries rehydrated
    // from it vs. shared lookups that had to compute locally. hits + misses
    // is deterministic per program; the split can depend on batch
    // scheduling (see CrossProgramCache::Stats).
    size_t shared_hits = 0;
    size_t shared_misses = 0;
    // Subset of shared_hits served by a PRELOADED cache entry, i.e. one a
    // persistent SummaryStore loaded from disk. Deterministic even with
    // batch scheduling: preloaded keys are present before any session runs,
    // so every lookup of one hits.
    size_t store_hits = 0;
    // Summaries of call-graph SCC members (recursive functions) entered into
    // this session's DB — computed locally or rehydrated under their
    // combined SCC content key. Deterministic.
    size_t scc_summaries = 0;
    size_t requests() const { return computed + hits + shared_hits; }
    size_t shared_requests() const { return shared_hits + shared_misses; }
    // Shared lookups the persistent store could not serve (key not on disk).
    size_t store_misses() const { return shared_requests() - store_hits; }
    // Summaries entered into this session's DB (locally computed plus
    // rehydrated); deterministic regardless of batch scheduling.
    size_t materialized() const { return computed + shared_hits; }
  };

  // Plain lookup (no stats); null on miss. Pointers stay valid until
  // clear(). The two-argument form is the base summary (fingerprint 0).
  const FunctionSummary* find(const ast::FuncDecl* function,
                              const core::AnalyzerOptions& options,
                              uint64_t fingerprint = 0) const;
  // Compute-time lookup: counts a hit when present.
  const FunctionSummary* lookup(const ast::FuncDecl* function,
                                const core::AnalyzerOptions& options,
                                uint64_t fingerprint = 0);
  // Counts a local compute (or a shared-cache rehydration when
  // `from_shared`; additionally a persistent-store hit when `from_store`);
  // overwrites any existing entry.
  const FunctionSummary& insert(const ast::FuncDecl* function,
                                const core::AnalyzerOptions& options,
                                uint64_t fingerprint, FunctionSummary summary,
                                bool from_shared = false, bool from_store = false);

  void note_application() { ++stats_.applications; }
  void note_shared_miss() { ++stats_.shared_misses; }
  void note_scc_summary() { ++stats_.scc_summaries; }

  // Optional content-addressed cache shared across sessions (programs).
  // Attach before any analysis; the owner must outlive this DB's use.
  void attach_shared(CrossProgramCache* shared) { shared_ = shared; }
  CrossProgramCache* shared() const { return shared_; }

  const Stats& stats() const { return stats_; }
  size_t size() const { return entries_.size(); }

  // AnalyzerOptions is a struct of independent feature bits; encode them into
  // an integer key. Every new option must be added here (a missed bit would
  // alias two configurations onto one cache slot). Public: the analyzer also
  // folds these bits into cross-program content addresses.
  static uint32_t encode(const core::AnalyzerOptions& options);

  // Drops every summary (they reference AST nodes and arena expressions the
  // owner is about to release) and resets the stats. The attached shared
  // cache (if any) is left untouched: its entries are session-independent.
  void clear();

 private:
  using Key = std::tuple<const ast::FuncDecl*, uint32_t, uint64_t>;
  std::map<Key, FunctionSummary> entries_;
  Stats stats_;
  CrossProgramCache* shared_ = nullptr;
};

// Instantiates summary expressions at one call site: substitutes actuals for
// formal scalar atoms, the caller's current values for the callee's exposed
// global reads, and remaps formal array parameters onto the actual arrays.
// Exact substitution only — apply() returns null whenever the result would
// need a non-exact binding (the caller then degrades that bound to unbounded,
// which is sound). Reads of arrays marked stale (already written by the
// caller's current loop body) degrade the same way.
class SummaryApplier {
 public:
  // Binds sym(id) (formal int param or exposed global) to the caller value.
  void bind(sym::SymbolId id, sym::Range value);
  // Maps a formal array parameter onto the actual array at the call site.
  void bind_array(const ast::VarDecl* formal, const ast::VarDecl* actual);
  // Marks an array (post-remap symbol) whose elements are stale in summary
  // expressions because the caller's body already wrote it.
  void mark_stale(sym::SymbolId array);

  // Exact instantiation; null if any required binding is missing, non-exact,
  // or reads a stale array element.
  sym::ExprPtr apply(const sym::ExprPtr& e) const;
  // Per-bound instantiation: a failed bound becomes unbounded (null).
  sym::Range apply(const sym::Range& r) const;

  const ast::VarDecl* remap_array(const ast::VarDecl* array) const;
  sym::SymbolId remap_array_symbol(sym::SymbolId array) const;

 private:
  std::map<sym::SymbolId, sym::Range> bindings_;
  std::map<const ast::VarDecl*, const ast::VarDecl*> array_map_;
  std::map<sym::SymbolId, sym::SymbolId> array_symbol_map_;
  std::set<sym::SymbolId> stale_arrays_;
};

}  // namespace sspar::ipa
