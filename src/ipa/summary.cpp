#include "ipa/summary.h"

namespace sspar::ipa {

// ---------------------------------------------------------------------------
// SummaryDB
// ---------------------------------------------------------------------------

uint32_t SummaryDB::encode(const core::AnalyzerOptions& o) {
  uint32_t bits = 0;
  auto push = [&bits](bool b) { bits = (bits << 1) | (b ? 1u : 0u); };
  push(o.enable_identity_rule);
  push(o.enable_affine_value_rule);
  push(o.enable_recurrence_rule);
  push(o.enable_inverse_perm_rule);
  push(o.enable_dense_prefix_rule);
  push(o.enable_branch_rules);
  push(o.enable_copy_rule);
  push(o.enable_lambda_sum_rule);
  push(o.enable_chain_injectivity_rule);
  return bits;
}

const FunctionSummary* SummaryDB::find(const ast::FuncDecl* function,
                                       const core::AnalyzerOptions& options,
                                       uint64_t fingerprint) const {
  auto it = entries_.find(Key{function, encode(options), fingerprint});
  return it == entries_.end() ? nullptr : &it->second;
}

const FunctionSummary* SummaryDB::lookup(const ast::FuncDecl* function,
                                         const core::AnalyzerOptions& options,
                                         uint64_t fingerprint) {
  const FunctionSummary* found = find(function, options, fingerprint);
  if (found) ++stats_.hits;
  return found;
}

const FunctionSummary& SummaryDB::insert(const ast::FuncDecl* function,
                                         const core::AnalyzerOptions& options,
                                         uint64_t fingerprint, FunctionSummary summary,
                                         bool from_shared, bool from_store) {
  if (from_shared) {
    ++stats_.shared_hits;
    if (from_store) ++stats_.store_hits;
  } else {
    ++stats_.computed;
  }
  // Counted whether computed or rehydrated: "context summaries materialized"
  // stays deterministic when batch scheduling decides who computes first.
  if (fingerprint != 0) ++stats_.context_computed;
  summary.entry_fingerprint = fingerprint;
  auto [it, inserted] = entries_.insert_or_assign(Key{function, encode(options), fingerprint},
                                                  std::move(summary));
  (void)inserted;
  return it->second;
}

void SummaryDB::clear() {
  entries_.clear();
  stats_ = Stats{};
}

// ---------------------------------------------------------------------------
// SummaryApplier
// ---------------------------------------------------------------------------

void SummaryApplier::bind(sym::SymbolId id, sym::Range value) {
  bindings_[id] = std::move(value);
}

void SummaryApplier::bind_array(const ast::VarDecl* formal, const ast::VarDecl* actual) {
  array_map_[formal] = actual;
  array_symbol_map_[formal->symbol] = actual->symbol;
}

void SummaryApplier::mark_stale(sym::SymbolId array) { stale_arrays_.insert(array); }

const ast::VarDecl* SummaryApplier::remap_array(const ast::VarDecl* array) const {
  auto it = array_map_.find(array);
  return it == array_map_.end() ? array : it->second;
}

sym::SymbolId SummaryApplier::remap_array_symbol(sym::SymbolId array) const {
  auto it = array_symbol_map_.find(array);
  return it == array_symbol_map_.end() ? array : it->second;
}

sym::ExprPtr SummaryApplier::apply(const sym::ExprPtr& e) const {
  if (!e) return nullptr;
  switch (e->kind) {
    case sym::ExprKind::Const:
      return e;
    case sym::ExprKind::Sym: {
      auto it = bindings_.find(e->symbol);
      if (it == bindings_.end()) return nullptr;  // unbound entry state
      return it->second.exact_value();            // null when non-exact
    }
    case sym::ExprKind::IterStart:
    case sym::ExprKind::LoopStart:
    case sym::ExprKind::Bottom:
      // λ/Λ atoms are loop-internal and never survive into a whole-function
      // summary; treat a stray one as not instantiable.
      return nullptr;
    case sym::ExprKind::ArrayElem: {
      sym::SymbolId array = remap_array_symbol(e->symbol);
      if (stale_arrays_.count(array)) return nullptr;
      sym::ExprPtr index = apply(e->operands[0]);
      if (!index) return nullptr;
      return sym::make_array_elem(array, index);
    }
    case sym::ExprKind::Add: {
      sym::ExprPtr acc = sym::make_const(e->value);
      for (size_t i = 0; i < e->operands.size(); ++i) {
        sym::ExprPtr term = apply(e->operands[i]);
        if (!term) return nullptr;
        acc = sym::add(acc, sym::mul_const(term, e->coeffs[i]));
      }
      return acc;
    }
    case sym::ExprKind::Mul: {
      sym::ExprPtr acc = nullptr;
      for (const sym::ExprPtr& op : e->operands) {
        sym::ExprPtr factor = apply(op);
        if (!factor) return nullptr;
        acc = acc ? sym::mul(acc, factor) : factor;
      }
      return acc;
    }
    case sym::ExprKind::Div:
    case sym::ExprKind::Mod: {
      sym::ExprPtr num = apply(e->operands[0]);
      sym::ExprPtr den = apply(e->operands[1]);
      if (!num || !den) return nullptr;
      return e->kind == sym::ExprKind::Div ? sym::div_floor(num, den) : sym::mod(num, den);
    }
    case sym::ExprKind::Min:
    case sym::ExprKind::Max: {
      sym::ExprPtr acc = nullptr;
      for (const sym::ExprPtr& op : e->operands) {
        sym::ExprPtr next = apply(op);
        if (!next) return nullptr;
        if (!acc) {
          acc = next;
        } else {
          acc = e->kind == sym::ExprKind::Min ? sym::smin(acc, next) : sym::smax(acc, next);
        }
      }
      return acc;
    }
  }
  return nullptr;
}

sym::Range SummaryApplier::apply(const sym::Range& r) const {
  if (r.is_bottom()) return sym::Range::bottom();
  return sym::Range::of(apply(r.lo()), apply(r.hi()));
}

}  // namespace sspar::ipa
