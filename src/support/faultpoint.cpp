#include "support/faultpoint.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <thread>

namespace sspar::support::faultpoint {

namespace {

// Every SSPAR_FAULTPOINT site in the codebase, sorted. hit() aborts on a
// name missing from this list (faultpoint builds only), so the registry and
// the code cannot drift apart; the crash-matrix tests iterate it.
constexpr const char* kKnownPoints[] = {
    "server.accept.post_accept",   // connection admitted, handler not yet started
    "server.analyze.pre_run",      // request parsed, pipeline not yet entered
    "server.read.post_poll",       // bytes readable on a connection
    "server.session.close",        // close_session parsed, session not yet dropped
    "server.session.open",         // open_session parsed, engine not yet created
    "server.session.update.pre_run",  // update parsed, engine not yet entered
    "server.write.pre_send",       // response built, first byte not yet sent
    "store.flush.post_rename",     // base file replaced, journal not yet truncated
    "store.flush.pre_rename",      // tmp file durable, rename not yet issued
    "store.flush.pre_sync",        // tmp file written, not yet fsync'd
    "store.flush.pre_write",       // eviction done, tmp file not yet written
    "store.journal.post_append",   // WAL batch durable
    "store.journal.pre_append",    // WAL batch built, not yet written
    "store.journal.pre_sync",      // WAL batch written, not yet fsync'd
    "store.open.pre_load",         // base file about to be read
    "store.open.pre_replay",       // base loaded, journal not yet replayed
};

enum class Action { None, Kill, Abort, Throw, Fail, Sleep };

struct Armed {
  Action action = Action::None;
  int sleep_ms = 0;
};

struct State {
  std::mutex mutex;
  std::map<std::string, Armed, std::less<>> armed;
  std::map<std::string, uint64_t, std::less<>> hits;
  bool env_parsed = false;
};

State& state() {
  static State s;
  return s;
}

bool is_known(std::string_view name) {
  for (const char* known : kKnownPoints) {
    if (name == known) return true;
  }
  return false;
}

bool parse_action(std::string_view text, Armed* out) {
  if (text == "kill") {
    out->action = Action::Kill;
  } else if (text == "abort") {
    out->action = Action::Abort;
  } else if (text == "throw") {
    out->action = Action::Throw;
  } else if (text == "fail") {
    out->action = Action::Fail;
  } else if (text.rfind("sleep=", 0) == 0) {
    out->action = Action::Sleep;
    out->sleep_ms = std::atoi(std::string(text.substr(6)).c_str());
    if (out->sleep_ms < 0) out->sleep_ms = 0;
  } else {
    return false;
  }
  return true;
}

// SSPAR_FAULTPOINTS="store.flush.pre_rename=kill;server.analyze.pre_run=throw"
void parse_env_locked(State& s) {
  if (s.env_parsed) return;
  s.env_parsed = true;
  const char* env = std::getenv("SSPAR_FAULTPOINTS");
  if (env == nullptr) return;
  std::string_view rest = env;
  while (!rest.empty()) {
    size_t semi = rest.find(';');
    std::string_view entry = rest.substr(0, semi);
    rest = semi == std::string_view::npos ? std::string_view{} : rest.substr(semi + 1);
    size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) continue;
    // The sleep action itself contains '='; split on the FIRST one only.
    std::string_view name = entry.substr(0, eq);
    std::string_view action = entry.substr(eq + 1);
    Armed armed;
    if (parse_action(action, &armed)) {
      s.armed[std::string(name)] = armed;
    } else {
      std::fprintf(stderr, "sspar faultpoint: unknown action '%.*s' for '%.*s'\n",
                   static_cast<int>(action.size()), action.data(),
                   static_cast<int>(name.size()), name.data());
    }
  }
}

// Looks up the armed action and bumps the hit counter; the action itself
// runs OUTSIDE the lock (kill/abort never return, sleep must not serialize
// unrelated connections, throw must not unwind through a held mutex).
Armed lookup(const char* name) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  parse_env_locked(s);
  if (!is_known(name)) {
    std::fprintf(stderr, "sspar faultpoint: '%s' is not in the known-points registry\n",
                 name);
    std::abort();
  }
  s.hits[std::string(name)] += 1;
  auto it = s.armed.find(std::string_view(name));
  return it == s.armed.end() ? Armed{} : it->second;
}

}  // namespace

bool compiled_in() {
#ifdef SSPAR_FAULTPOINTS
  return true;
#else
  return false;
#endif
}

void arm(std::string_view name, std::string_view action) {
  Armed armed;
  if (!parse_action(action, &armed)) {
    std::fprintf(stderr, "sspar faultpoint: unknown action '%.*s'\n",
                 static_cast<int>(action.size()), action.data());
    return;
  }
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.armed[std::string(name)] = armed;
}

void disarm_all() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.armed.clear();
  s.hits.clear();
}

uint64_t hit_count(std::string_view name) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  auto it = s.hits.find(name);
  return it == s.hits.end() ? 0 : it->second;
}

std::vector<std::string> known_points() { return known_points(""); }

std::vector<std::string> known_points(std::string_view prefix) {
  std::vector<std::string> points;
  for (const char* name : kKnownPoints) {
    if (std::string_view(name).rfind(prefix, 0) == 0) points.emplace_back(name);
  }
  return points;
}

void hit(const char* name) {
  Armed armed = lookup(name);
  switch (armed.action) {
    case Action::None:
    case Action::Fail:  // only SSPAR_FAULTPOINT_FAIL sites react to "fail"
      return;
    case Action::Kill:
      // SIGKILL, not _exit(): no atexit handlers, no stream flushes — the
      // closest a test can get to the machine losing the process.
      std::raise(SIGKILL);
      return;
    case Action::Abort:
      std::abort();
      return;
    case Action::Throw:
      throw FaultInjected(name);
    case Action::Sleep:
      std::this_thread::sleep_for(std::chrono::milliseconds(armed.sleep_ms));
      return;
  }
}

bool hit_fail(const char* name) {
  Armed armed = lookup(name);
  if (armed.action == Action::Fail) return true;
  switch (armed.action) {
    case Action::Kill:
      std::raise(SIGKILL);
      break;
    case Action::Abort:
      std::abort();
      break;
    case Action::Throw:
      throw FaultInjected(name);
    case Action::Sleep:
      std::this_thread::sleep_for(std::chrono::milliseconds(armed.sleep_ms));
      break;
    case Action::None:
    case Action::Fail:
      break;
  }
  return false;
}

}  // namespace sspar::support::faultpoint
