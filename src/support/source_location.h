// Source positions for the mini-C frontend. Offsets are byte offsets into the
// original buffer; line/column are 1-based and computed eagerly by the lexer.
#pragma once

#include <cstdint>
#include <string>

namespace sspar::support {

struct SourceLocation {
  uint32_t line = 0;    // 1-based; 0 means "unknown"
  uint32_t column = 0;  // 1-based
  uint32_t offset = 0;  // byte offset into the source buffer

  bool valid() const { return line != 0; }
  std::string to_string() const {
    if (!valid()) return "<unknown>";
    return std::to_string(line) + ":" + std::to_string(column);
  }
};

struct SourceRange {
  SourceLocation begin;
  SourceLocation end;
};

}  // namespace sspar::support
