#include "support/diagnostics.h"

namespace sspar::support {

namespace {
const char* severity_name(Severity sev) {
  switch (sev) {
    case Severity::Note:
      return "note";
    case Severity::Warning:
      return "warning";
    case Severity::Error:
      return "error";
  }
  return "unknown";
}
}  // namespace

std::string Diagnostic::to_string() const {
  return location.to_string() + ": " + severity_name(severity) + ": " + message;
}

void DiagnosticEngine::report(Severity sev, SourceLocation loc, std::string message) {
  if (sev == Severity::Error) ++error_count_;
  diagnostics_.push_back(Diagnostic{sev, loc, std::move(message)});
}

std::string DiagnosticEngine::dump() const {
  std::string out;
  for (const auto& d : diagnostics_) {
    out += d.to_string();
    out += '\n';
  }
  return out;
}

void DiagnosticEngine::clear() {
  diagnostics_.clear();
  error_count_ = 0;
}

}  // namespace sspar::support
