#include "support/diagnostics.h"

#include <algorithm>
#include <tuple>

#include "support/text.h"

namespace sspar::support {

const char* severity_name(Severity sev) {
  switch (sev) {
    case Severity::Note:
      return "note";
    case Severity::Warning:
      return "warning";
    case Severity::Error:
      return "error";
  }
  return "unknown";
}

std::string diag_code_name(DiagCode code) {
  if (code == DiagCode::Unspecified) return "";
  int value = static_cast<int>(code);
  if (value >= kWarningBase) return format("W%04d", value - kWarningBase);
  return format("E%04d", value);
}

std::string Diagnostic::to_string() const {
  std::string out = location.to_string() + ": " + severity_name(severity) + ": " + message;
  if (code != DiagCode::Unspecified) out += " [" + diag_code_name(code) + "]";
  return out;
}

void DiagnosticEngine::report(Severity sev, DiagCode code, SourceLocation loc,
                              std::string message) {
  if (sev == Severity::Error) ++error_count_;
  diagnostics_.push_back(Diagnostic{sev, code, loc, std::move(message)});
}

std::string DiagnosticEngine::dump() const {
  std::string out;
  for (const auto& d : diagnostics_) {
    out += d.to_string();
    out += '\n';
  }
  return out;
}

bool diag_canonical_less(const Diagnostic& a, const Diagnostic& b) {
  auto key = [](const Diagnostic& d) {
    return std::make_tuple(d.location.line, d.location.column, static_cast<int>(d.code),
                           static_cast<int>(d.severity), std::cref(d.message));
  };
  return key(a) < key(b);
}

void canonicalize_diagnostics(std::vector<Diagnostic>& diags) {
  std::stable_sort(diags.begin(), diags.end(), diag_canonical_less);
  diags.erase(std::unique(diags.begin(), diags.end()), diags.end());
}

void DiagnosticEngine::clear() {
  diagnostics_.clear();
  error_count_ = 0;
}

}  // namespace sspar::support
