// Small string helpers used across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace sspar::support {

// printf-style formatting into std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

std::vector<std::string> split_lines(std::string_view text);

// Joins pieces with `sep`.
std::string join(const std::vector<std::string>& pieces, std::string_view sep);

// True if `text` contains `needle`.
bool contains(std::string_view text, std::string_view needle);

// Renders a simple aligned text table (used by the survey benches).
// `rows` includes the header row; every row must have the same arity.
std::string render_table(const std::vector<std::vector<std::string>>& rows);

}  // namespace sspar::support
