// Minimal JSON document model used by the structured reports
// (driver/json_report.h and `sspar-analyze --json`).
//
// Deliberately small: the value tree covers exactly what the reports need
// (null/bool/int64/double/string/array/object), objects keep keys sorted
// (std::map) so serialization is deterministic, and the parser exists so the
// tests can prove the emitted reports round-trip. Not a general-purpose JSON
// library — no comments, no \uXXXX surrogate pairs beyond the BMP, numbers
// outside int64 fall back to double.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sspar::support::json {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

class Value {
 public:
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };

  Value() : kind_(Kind::Null) {}
  Value(std::nullptr_t) : kind_(Kind::Null) {}
  Value(bool b) : kind_(Kind::Bool), bool_(b) {}
  Value(int v) : kind_(Kind::Int), int_(v) {}
  Value(unsigned v) : kind_(Kind::Int), int_(v) {}
  Value(int64_t v) : kind_(Kind::Int), int_(v) {}
  Value(double v) : kind_(Kind::Double), double_(v) {}
  Value(const char* s) : kind_(Kind::String), string_(s) {}
  Value(std::string s) : kind_(Kind::String), string_(std::move(s)) {}
  Value(Array a) : kind_(Kind::Array), array_(std::move(a)) {}
  Value(Object o) : kind_(Kind::Object), object_(std::move(o)) {}

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_bool() const { return kind_ == Kind::Bool; }
  bool is_int() const { return kind_ == Kind::Int; }
  bool is_number() const { return kind_ == Kind::Int || kind_ == Kind::Double; }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_object() const { return kind_ == Kind::Object; }

  bool as_bool() const { return bool_; }
  int64_t as_int() const { return kind_ == Kind::Double ? static_cast<int64_t>(double_) : int_; }
  double as_double() const { return kind_ == Kind::Int ? static_cast<double>(int_) : double_; }
  const std::string& as_string() const { return string_; }
  const Array& as_array() const { return array_; }
  Array& as_array() { return array_; }
  const Object& as_object() const { return object_; }
  Object& as_object() { return object_; }

  // Object member lookup; nullptr when absent or not an object.
  const Value* find(const std::string& key) const;
  // find(key)->as_int() with a default for absent members.
  int64_t int_or(const std::string& key, int64_t fallback) const;

  // Compact serialization (no whitespace). `indent >= 0` pretty-prints.
  std::string dump(int indent = -1) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

// Escapes and quotes `s` as a JSON string literal.
std::string quote(const std::string& s);

// Parses a complete JSON document. Returns nullopt (and sets *error if
// given) on malformed input or trailing garbage.
std::optional<Value> parse(std::string_view text, std::string* error = nullptr);

}  // namespace sspar::support::json
