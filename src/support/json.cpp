#include "support/json.h"

#include <cctype>
#include <charconv>
#include <cmath>

#include "support/text.h"

namespace sspar::support::json {

const Value* Value::find(const std::string& key) const {
  if (kind_ != Kind::Object) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

int64_t Value::int_or(const std::string& key, int64_t fallback) const {
  const Value* v = find(key);
  return v && v->is_number() ? v->as_int() : fallback;
}

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void Value::dump_to(std::string& out, int indent, int depth) const {
  auto newline = [&](int d) {
    if (indent < 0) return;
    out += '\n';
    out.append(static_cast<size_t>(indent * d), ' ');
  };
  switch (kind_) {
    case Kind::Null:
      out += "null";
      break;
    case Kind::Bool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::Int:
      out += std::to_string(int_);
      break;
    case Kind::Double:
      if (std::isfinite(double_)) {
        out += format("%.17g", double_);
      } else {
        out += "null";  // JSON has no Inf/NaN
      }
      break;
    case Kind::String:
      out += quote(string_);
      break;
    case Kind::Array: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      bool first = true;
      for (const Value& v : array_) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        v.dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      break;
    }
    case Kind::Object: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, v] : object_) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        out += quote(key);
        out += indent < 0 ? ":" : ": ";
        v.dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Value> run(std::string* error) {
    auto value = parse_value();
    if (value) {
      skip_ws();
      if (pos_ != text_.size()) {
        fail("trailing characters after JSON document");
        value = std::nullopt;
      }
    }
    if (!value && error) *error = error_;
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  bool fail(const std::string& what) {
    if (error_.empty()) error_ = format("at offset %zu: %s", pos_, what.c_str());
    return false;
  }

  bool consume_lit(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return fail("invalid literal");
    pos_ += lit.size();
    return true;
  }

  std::optional<Value> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    char c = text_[pos_];
    switch (c) {
      case 'n':
        if (!consume_lit("null")) return std::nullopt;
        return Value(nullptr);
      case 't':
        if (!consume_lit("true")) return std::nullopt;
        return Value(true);
      case 'f':
        if (!consume_lit("false")) return std::nullopt;
        return Value(false);
      case '"': {
        std::string s;
        if (!parse_string(&s)) return std::nullopt;
        return Value(std::move(s));
      }
      case '[':
        return parse_array();
      case '{':
        return parse_object();
      default:
        return parse_number();
    }
  }

  bool parse_string(std::string* out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) break;
        char esc = text_[pos_ + 1];
        pos_ += 2;
        switch (esc) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_ + static_cast<size_t>(i)];
              if (!std::isxdigit(static_cast<unsigned char>(h))) {
                return fail("bad \\u escape");
              }
              code = code * 16 +
                     static_cast<unsigned>(std::isdigit(static_cast<unsigned char>(h))
                                               ? h - '0'
                                               : std::tolower(h) - 'a' + 10);
            }
            pos_ += 4;
            // UTF-8 encode (BMP only; our emitter only escapes control chars).
            if (code < 0x80) {
              *out += static_cast<char>(code);
            } else if (code < 0x800) {
              *out += static_cast<char>(0xC0 | (code >> 6));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              *out += static_cast<char>(0xE0 | (code >> 12));
              *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return fail("unknown escape");
        }
        continue;
      }
      *out += c;
      ++pos_;
    }
    return fail("unterminated string");
  }

  std::optional<Value> parse_number() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    std::string_view token = text_.substr(start, pos_ - start);
    // JSON numbers start with '-' or a digit (no leading '+' or '.').
    if (token.empty() || token == "-" ||
        (token[0] != '-' && !std::isdigit(static_cast<unsigned char>(token[0])))) {
      fail("invalid number");
      return std::nullopt;
    }
    if (!is_double) {
      int64_t value = 0;
      auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc() && ptr == token.data() + token.size()) return Value(value);
    }
    try {
      size_t consumed = 0;
      double value = std::stod(std::string(token), &consumed);
      // The scanner greedily swallows any digits/.eE+- run; reject tokens
      // stod did not consume entirely (e.g. "1.2.3", "1e+").
      if (consumed != token.size()) {
        fail("invalid number");
        return std::nullopt;
      }
      return Value(value);
    } catch (const std::exception&) {
      fail("invalid number");
      return std::nullopt;
    }
  }

  std::optional<Value> parse_array() {
    ++pos_;  // '['
    Array items;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return Value(std::move(items));
    }
    while (true) {
      auto item = parse_value();
      if (!item) return std::nullopt;
      items.push_back(std::move(*item));
      skip_ws();
      if (pos_ >= text_.size()) {
        fail("unterminated array");
        return std::nullopt;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return Value(std::move(items));
      }
      fail("expected ',' or ']' in array");
      return std::nullopt;
    }
  }

  std::optional<Value> parse_object() {
    ++pos_;  // '{'
    Object members;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return Value(std::move(members));
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        fail("expected object key");
        return std::nullopt;
      }
      std::string key;
      if (!parse_string(&key)) return std::nullopt;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        fail("expected ':' after object key");
        return std::nullopt;
      }
      ++pos_;
      auto value = parse_value();
      if (!value) return std::nullopt;
      members.emplace(std::move(key), std::move(*value));
      skip_ws();
      if (pos_ >= text_.size()) {
        fail("unterminated object");
        return std::nullopt;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return Value(std::move(members));
      }
      fail("expected ',' or '}' in object");
      return std::nullopt;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<Value> parse(std::string_view text, std::string* error) {
  return Parser(text).run(error);
}

}  // namespace sspar::support::json
