// Diagnostic sink shared by the frontend and the analysis passes.
//
// The engine collects diagnostics instead of printing them so tests can make
// exact assertions about what a pass reported.
#pragma once

#include <string>
#include <vector>

#include "support/source_location.h"

namespace sspar::support {

enum class Severity { Note, Warning, Error };

struct Diagnostic {
  Severity severity = Severity::Error;
  SourceLocation location;
  std::string message;

  std::string to_string() const;
};

class DiagnosticEngine {
 public:
  void report(Severity sev, SourceLocation loc, std::string message);
  void error(SourceLocation loc, std::string message) {
    report(Severity::Error, loc, std::move(message));
  }
  void warning(SourceLocation loc, std::string message) {
    report(Severity::Warning, loc, std::move(message));
  }
  void note(SourceLocation loc, std::string message) {
    report(Severity::Note, loc, std::move(message));
  }

  bool has_errors() const { return error_count_ > 0; }
  size_t error_count() const { return error_count_; }
  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }

  // All diagnostics joined by newlines; convenient for test failure messages.
  std::string dump() const;

  void clear();

 private:
  std::vector<Diagnostic> diagnostics_;
  size_t error_count_ = 0;
};

}  // namespace sspar::support
