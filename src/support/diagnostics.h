// Diagnostic sink shared by the frontend and the analysis passes.
//
// The engine collects diagnostics instead of printing them so tests can make
// exact assertions about what a pass reported. Every diagnostic carries a
// stable machine-readable code (DiagCode) in addition to the human-readable
// message, so tools (and the JSON report) can match on the *kind* of error
// without parsing message text.
#pragma once

#include <string>
#include <vector>

#include "support/source_location.h"

namespace sspar::support {

enum class Severity { Note, Warning, Error };

// Stable diagnostic codes. The numeric ranges are reserved per layer:
//   E01xx lexer, E02xx parser, E03xx sema. Warnings use a parallel W-space:
// enum values >= kWarningBase render as W<code-1000> (W03xx analysis
// warnings). Codes are part of the public contract (the JSON report exposes
// them); never renumber an existing one.
inline constexpr int kWarningBase = 1000;

enum class DiagCode {
  Unspecified = 0,  // legacy call sites that have not been classified

  // Lexer.
  LexUnterminatedComment = 101,  // E0101
  LexUnexpectedChar = 102,       // E0102

  // Parser.
  ParseExpectedToken = 201,  // E0201: expect() mismatch
  ParseExpectedType = 202,   // E0202
  ParseExpectedDecl = 203,   // E0203: junk at top level
  ParseExpectedExpr = 204,   // E0204

  // Sema.
  SemaRedeclaration = 301,      // E0301
  SemaUndeclared = 302,         // E0302
  SemaNotAnArray = 303,         // E0303: subscripting a scalar
  SemaTooManySubscripts = 304,  // E0304
  SemaSubscriptBase = 305,      // E0305: base is not a variable
  SemaBadAssignTarget = 306,    // E0306
  SemaBadIncrementTarget = 307, // E0307

  // Analysis warnings (W03xx): a loop was abandoned as unanalyzable and the
  // analyzer degraded to conservative havoc instead of failing.
  AnalysisLoopCall = kWarningBase + 301,        // W0301: call without a usable summary
  AnalysisLoopWhile = kWarningBase + 302,       // W0302: inner while loop
  AnalysisLoopAbruptExit = kWarningBase + 303,  // W0303: break/continue/return
};

// "E0302"-style stable spelling (empty string for Unspecified).
std::string diag_code_name(DiagCode code);

// "note" / "warning" / "error".
const char* severity_name(Severity sev);

struct Diagnostic {
  Severity severity = Severity::Error;
  DiagCode code = DiagCode::Unspecified;
  SourceLocation location;
  std::string message;

  // "3:12: error: use of undeclared identifier 'y' [E0302]"
  std::string to_string() const;

  friend bool operator==(const Diagnostic& a, const Diagnostic& b) {
    return a.severity == b.severity && a.code == b.code &&
           a.location.line == b.location.line && a.location.column == b.location.column &&
           a.message == b.message;
  }
};

// Canonical diagnostic order: (line, column, code, severity, message).
bool diag_canonical_less(const Diagnostic& a, const Diagnostic& b);

// Stable emission order for diagnostics: sorts by diag_canonical_less and
// drops exact duplicates. Analysis passes may visit functions in any order
// (batch shards, incremental dirty cones); canonical order makes their
// reports byte-comparable.
void canonicalize_diagnostics(std::vector<Diagnostic>& diags);

class DiagnosticEngine {
 public:
  void report(Severity sev, SourceLocation loc, std::string message) {
    report(sev, DiagCode::Unspecified, loc, std::move(message));
  }
  void report(Severity sev, DiagCode code, SourceLocation loc, std::string message);

  void error(SourceLocation loc, std::string message) {
    report(Severity::Error, loc, std::move(message));
  }
  void error(DiagCode code, SourceLocation loc, std::string message) {
    report(Severity::Error, code, loc, std::move(message));
  }
  void warning(SourceLocation loc, std::string message) {
    report(Severity::Warning, loc, std::move(message));
  }
  void note(SourceLocation loc, std::string message) {
    report(Severity::Note, loc, std::move(message));
  }

  bool has_errors() const { return error_count_ > 0; }
  size_t error_count() const { return error_count_; }
  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }

  // All diagnostics joined by newlines; convenient for test failure messages.
  std::string dump() const;

  void clear();

 private:
  std::vector<Diagnostic> diagnostics_;
  size_t error_count_ = 0;
};

}  // namespace sspar::support
