#include "support/text.h"

#include <cstdarg>
#include <cstdio>

namespace sspar::support {

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::vector<std::string> split_lines(std::string_view text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start <= text.size()) {
    size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.emplace_back(text.substr(start));
      break;
    }
    lines.emplace_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

std::string join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i) out += sep;
    out += pieces[i];
  }
  return out;
}

bool contains(std::string_view text, std::string_view needle) {
  return text.find(needle) != std::string_view::npos;
}

std::string render_table(const std::vector<std::vector<std::string>>& rows) {
  if (rows.empty()) return {};
  std::vector<size_t> widths;
  for (const auto& row : rows) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  for (size_t r = 0; r < rows.size(); ++r) {
    const auto& row = rows[r];
    for (size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) out.append(widths[c] - row[c].size() + 2, ' ');
    }
    out += '\n';
    if (r == 0) {
      size_t total = 0;
      for (size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
      out.append(total, '-');
      out += '\n';
    }
  }
  return out;
}

}  // namespace sspar::support
