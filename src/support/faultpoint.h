// Compile-time-gated fault-injection framework.
//
// A fault point is a named site in a recovery-critical code path:
//
//   SSPAR_FAULTPOINT("store.flush.pre_rename");
//
// In builds without SSPAR_FAULTPOINTS the macro expands to nothing — zero
// code, zero data, zero branches in production binaries. With the option on
// (the default for development builds; see CMakeLists.txt) an unarmed site
// costs one relaxed atomic load; an ARMED site performs its configured
// action, which is how the robustness tests make every recovery path
// deterministic instead of probabilistic:
//
//   kill        raise(SIGKILL) — simulates the process dying right here
//               (crash-matrix tests fork a child, arm a point, and assert
//               the survivor state reloads consistently)
//   abort       std::abort()
//   throw       throws support::faultpoint::FaultInjected (tests the
//               exception-recovery path of the analyze handler)
//   fail        SSPAR_FAULTPOINT_FAIL(name) evaluates true — the site
//               simulates an I/O failure and takes its error path
//   sleep=<ms>  blocks for <ms> milliseconds (deadline/timeout tests)
//
// Arming: programmatically via arm()/disarm_all() (same-process tests and
// forked children), or through the SSPAR_FAULTPOINTS environment variable
// ("name=action;name=action", parsed on first hit) for spawned processes.
// Every site name must appear in known_points() — hitting an unregistered
// name aborts in faultpoint builds, so the canonical list in faultpoint.cpp
// cannot drift from the code.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace sspar::support::faultpoint {

// Thrown by a site armed with "throw". Derives from std::runtime_error so
// generic catch(std::exception&) recovery paths absorb it like any other
// pipeline failure.
class FaultInjected : public std::runtime_error {
 public:
  explicit FaultInjected(const std::string& point)
      : std::runtime_error("injected fault at " + point) {}
};

// True when the framework is compiled in (SSPAR_FAULTPOINTS builds).
bool compiled_in();

// Arms `name` with `action` (see the table above). Unknown actions are
// ignored with a stderr warning rather than aborting — a typo in a test
// should fail its assertions, not the process. Thread-safe.
void arm(std::string_view name, std::string_view action);

// Disarms every point and resets hit counters. Thread-safe.
void disarm_all();

// Times `name` was hit since the last disarm_all() (0 in non-faultpoint
// builds). Lets tests assert a recovery path actually ran through the site.
uint64_t hit_count(std::string_view name);

// The canonical registry of every fault-point site in the codebase, sorted.
// Crash-matrix tests iterate this to kill the process at each one.
std::vector<std::string> known_points();
// The subset of known_points() under `prefix` ("store." / "server.").
std::vector<std::string> known_points(std::string_view prefix);

// Implementation hooks behind the macros; call through the macros so
// non-faultpoint builds compile the sites away entirely.
void hit(const char* name);
bool hit_fail(const char* name);

}  // namespace sspar::support::faultpoint

#ifdef SSPAR_FAULTPOINTS
// Runs the armed action for `name`, if any (kill/abort/throw/sleep).
#define SSPAR_FAULTPOINT(name) ::sspar::support::faultpoint::hit(name)
// Evaluates true when `name` is armed with "fail": the site should behave
// as if the operation it guards failed (e.g. return false from an I/O path).
#define SSPAR_FAULTPOINT_FAIL(name) ::sspar::support::faultpoint::hit_fail(name)
#else
#define SSPAR_FAULTPOINT(name) ((void)0)
#define SSPAR_FAULTPOINT_FAIL(name) (false)
#endif
