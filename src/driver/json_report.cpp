#include "driver/json_report.h"

#include "frontend/ast.h"
#include "symbolic/expr.h"

namespace sspar::driver {

using support::json::Array;
using support::json::Object;
using support::json::Value;

namespace {

Value diagnostic_to_json(const support::Diagnostic& d) {
  Object o;
  o.emplace("severity", support::severity_name(d.severity));
  o.emplace("code", support::diag_code_name(d.code));
  o.emplace("line", static_cast<int64_t>(d.location.line));
  o.emplace("column", static_cast<int64_t>(d.location.column));
  o.emplace("message", d.message);
  return Value(std::move(o));
}

Value stage_to_json(const pipeline::StageStats& stage) {
  Object o;
  o.emplace("runs", stage.runs);
  o.emplace("total_ms", stage.total_ms);
  return Value(std::move(o));
}

Value section_to_json(const sym::ExprPtr& lo, const sym::ExprPtr& hi,
                      const sym::SymbolTable& symbols) {
  Object o;
  o.emplace("lo", lo ? Value(sym::to_string(lo, symbols)) : Value(nullptr));
  o.emplace("hi", hi ? Value(sym::to_string(hi, symbols)) : Value(nullptr));
  return Value(std::move(o));
}

}  // namespace

Value verdict_to_json(const core::LoopVerdict& verdict) {
  Object o;
  o.emplace("loop_id", verdict.loop_id);
  if (verdict.loop && verdict.loop->location.valid()) {
    o.emplace("line", static_cast<int64_t>(verdict.loop->location.line));
  }
  o.emplace("canonical", verdict.canonical);
  o.emplace("parallel", verdict.parallel);
  o.emplace("subscripted", verdict.uses_subscripted_subscripts);
  o.emplace("property", core::property_name(verdict.property));
  o.emplace("peeled", verdict.peeled);
  o.emplace("reason", verdict.reason);
  o.emplace("hybrid", verdict.hybrid);
  if (verdict.hybrid) {
    // Inspector–executor dual-version metadata: the property the emitted
    // runtime check verifies, the index array it inspects, and the inclusive
    // section bounds of the check.
    o.emplace("hybrid_property", core::property_name(verdict.hybrid_property));
    o.emplace("hybrid_index_array", verdict.hybrid_index_array);
    o.emplace("hybrid_check_lo", verdict.hybrid_check_lo);
    o.emplace("hybrid_check_hi", verdict.hybrid_check_hi);
    if (verdict.hybrid_property == core::EnablingProperty::SubsetInjective) {
      o.emplace("hybrid_min_value", verdict.hybrid_min_value);
    }
  }
  // Interprocedural provenance: the functions whose summaries proved the
  // enabling property ("property proven via summary of f").
  Array via_summaries;
  for (const std::string& name : verdict.summaries_used) via_summaries.emplace_back(name);
  o.emplace("via_summaries", std::move(via_summaries));
  Array blockers;
  for (const std::string& b : verdict.blockers) blockers.emplace_back(b);
  o.emplace("blockers", std::move(blockers));
  Array privates;
  for (const ast::VarDecl* p : verdict.privates) privates.emplace_back(p->name);
  o.emplace("privates", std::move(privates));
  return Value(std::move(o));
}

Value facts_to_json(const core::FactDB& facts, const sym::SymbolTable& symbols) {
  Object by_array;
  for (const auto& [array, array_facts_ptr] : facts.all()) {
    const core::ArrayFacts& array_facts = *array_facts_ptr;
    Object entry;
    Array identities;
    for (const auto& f : array_facts.identities) {
      identities.push_back(section_to_json(f.lo, f.hi, symbols));
    }
    entry.emplace("identities", std::move(identities));
    Array values;
    for (const auto& f : array_facts.values) {
      Value section = section_to_json(f.lo, f.hi, symbols);
      section.as_object().emplace("value", f.value.to_string(symbols));
      values.push_back(std::move(section));
    }
    entry.emplace("values", std::move(values));
    Array steps;
    for (const auto& f : array_facts.steps) {
      Value section = section_to_json(f.lo, f.hi, symbols);
      section.as_object().emplace("step", f.step.to_string(symbols));
      steps.push_back(std::move(section));
    }
    entry.emplace("steps", std::move(steps));
    Array injectives;
    for (const auto& f : array_facts.injectives) {
      Value section = section_to_json(f.lo, f.hi, symbols);
      if (f.min_value) {
        section.as_object().emplace("min_value", *f.min_value);
      }
      injectives.push_back(std::move(section));
    }
    entry.emplace("injectives", std::move(injectives));
    by_array.emplace(symbols.name(array), std::move(entry));
  }
  return Value(std::move(by_array));
}

Value program_report_to_json(const ProgramReport& report, bool include_output) {
  Object o;
  o.emplace("name", report.name);
  o.emplace("ok", report.ok);
  if (!report.ok) o.emplace("error", report.error);
  Array diags;
  for (const auto& d : report.result.diags) diags.push_back(diagnostic_to_json(d));
  o.emplace("diagnostics", std::move(diags));
  o.emplace("loops", report.loops);
  o.emplace("subscripted", report.subscripted);
  o.emplace("parallel", report.parallel);
  o.emplace("parallel_subscripted", report.parallel_subscripted);
  o.emplace("annotated", report.result.parallelized);
  Object coverage;
  coverage.emplace("static_parallel", report.static_parallel);
  coverage.emplace("hybrid_parallel", report.hybrid_parallel);
  coverage.emplace("serial", report.serial);
  o.emplace("coverage", std::move(coverage));
  Array verdicts;
  for (const auto& v : report.result.verdicts) verdicts.push_back(verdict_to_json(v));
  o.emplace("verdicts", std::move(verdicts));
  Object stages;
  stages.emplace("parse", stage_to_json(report.stages.parse));
  stages.emplace("analyze", stage_to_json(report.stages.analyze));
  stages.emplace("parallelize", stage_to_json(report.stages.parallelize));
  stages.emplace("annotate", stage_to_json(report.stages.annotate));
  stages.emplace("emit", stage_to_json(report.stages.emit));
  o.emplace("stages", std::move(stages));
  Object summary_cache;
  summary_cache.emplace("computed", static_cast<int64_t>(report.summary_cache.computed));
  summary_cache.emplace("hits", static_cast<int64_t>(report.summary_cache.hits));
  summary_cache.emplace("applications",
                        static_cast<int64_t>(report.summary_cache.applications));
  summary_cache.emplace("context_computed",
                        static_cast<int64_t>(report.summary_cache.context_computed));
  summary_cache.emplace("shared_hits",
                        static_cast<int64_t>(report.summary_cache.shared_hits));
  summary_cache.emplace("shared_misses",
                        static_cast<int64_t>(report.summary_cache.shared_misses));
  summary_cache.emplace("store_hits",
                        static_cast<int64_t>(report.summary_cache.store_hits));
  summary_cache.emplace("scc_summaries",
                        static_cast<int64_t>(report.summary_cache.scc_summaries));
  o.emplace("summary_cache", std::move(summary_cache));
  if (include_output && report.ok) o.emplace("output", report.result.output);
  return Value(std::move(o));
}

Value stats_to_json(const BatchStats& stats) {
  Object o;
  o.emplace("programs", stats.programs);
  o.emplace("failed", stats.failed);
  o.emplace("loops", stats.loops);
  o.emplace("subscripted", stats.subscripted);
  o.emplace("parallel", stats.parallel);
  o.emplace("parallel_subscripted", stats.parallel_subscripted);
  o.emplace("annotated", stats.annotated);
  Object coverage;
  coverage.emplace("static_parallel", stats.static_parallel);
  coverage.emplace("hybrid_parallel", stats.hybrid_parallel);
  coverage.emplace("serial", stats.serial);
  o.emplace("coverage", std::move(coverage));
  o.emplace("programs_with_pattern", stats.programs_with_pattern);
  o.emplace("summaries_computed", stats.summaries_computed);
  o.emplace("summary_cache_hits", stats.summary_cache_hits);
  o.emplace("summary_applications", stats.summary_applications);
  o.emplace("summary_context_computed", stats.summary_context_computed);
  o.emplace("cross_summary_requests", stats.cross_summary_requests);
  o.emplace("cross_summary_entries", stats.cross_summary_entries);
  o.emplace("summary_scc", stats.summary_scc);
  // Persistent-store counters (all deterministic for a fixed input set and
  // store state — see BatchStats).
  Object store;
  store.emplace("loaded", stats.store_loaded);
  store.emplace("hits", stats.store_hits);
  store.emplace("misses", stats.store_misses);
  store.emplace("evicted", stats.store_evicted);
  store.emplace("flushed", stats.store_flushed);
  o.emplace("persistent_store", std::move(store));
  // Per-run resilience counters (see BatchStats: deterministic, inside
  // operator== — the server's cumulative totals are reported elsewhere).
  Object resilience;
  resilience.emplace("shed", stats.shed);
  resilience.emplace("timed_out", stats.timed_out);
  resilience.emplace("recovered", stats.recovered);
  resilience.emplace("journal_replays", stats.journal_replays);
  o.emplace("resilience", std::move(resilience));
  Object properties;
  for (const auto& [key, count] : stats.property_counts) properties.emplace(key, count);
  o.emplace("property_counts", std::move(properties));
  return Value(std::move(o));
}

BatchStats stats_from_json(const Value& value) {
  BatchStats stats;
  stats.programs = static_cast<int>(value.int_or("programs", 0));
  stats.failed = static_cast<int>(value.int_or("failed", 0));
  stats.loops = static_cast<int>(value.int_or("loops", 0));
  stats.subscripted = static_cast<int>(value.int_or("subscripted", 0));
  stats.parallel = static_cast<int>(value.int_or("parallel", 0));
  stats.parallel_subscripted = static_cast<int>(value.int_or("parallel_subscripted", 0));
  stats.annotated = static_cast<int>(value.int_or("annotated", 0));
  if (const Value* coverage = value.find("coverage")) {
    stats.static_parallel = static_cast<int>(coverage->int_or("static_parallel", 0));
    stats.hybrid_parallel = static_cast<int>(coverage->int_or("hybrid_parallel", 0));
    stats.serial = static_cast<int>(coverage->int_or("serial", 0));
  }
  stats.programs_with_pattern = static_cast<int>(value.int_or("programs_with_pattern", 0));
  stats.summaries_computed = static_cast<int>(value.int_or("summaries_computed", 0));
  stats.summary_cache_hits = static_cast<int>(value.int_or("summary_cache_hits", 0));
  stats.summary_applications = static_cast<int>(value.int_or("summary_applications", 0));
  stats.summary_context_computed =
      static_cast<int>(value.int_or("summary_context_computed", 0));
  stats.cross_summary_requests =
      static_cast<int>(value.int_or("cross_summary_requests", 0));
  stats.cross_summary_entries = static_cast<int>(value.int_or("cross_summary_entries", 0));
  stats.summary_scc = static_cast<int>(value.int_or("summary_scc", 0));
  if (const Value* store = value.find("persistent_store")) {
    stats.store_loaded = static_cast<int>(store->int_or("loaded", 0));
    stats.store_hits = static_cast<int>(store->int_or("hits", 0));
    stats.store_misses = static_cast<int>(store->int_or("misses", 0));
    stats.store_evicted = static_cast<int>(store->int_or("evicted", 0));
    stats.store_flushed = static_cast<int>(store->int_or("flushed", 0));
  }
  if (const Value* resilience = value.find("resilience")) {
    stats.shed = static_cast<int>(resilience->int_or("shed", 0));
    stats.timed_out = static_cast<int>(resilience->int_or("timed_out", 0));
    stats.recovered = static_cast<int>(resilience->int_or("recovered", 0));
    stats.journal_replays = static_cast<int>(resilience->int_or("journal_replays", 0));
  }
  if (const Value* properties = value.find("property_counts")) {
    if (properties->is_object()) {
      for (const auto& [key, count] : properties->as_object()) {
        if (count.is_number()) stats.property_counts[key] = static_cast<int>(count.as_int());
      }
    }
  }
  return stats;
}

Value batch_report_to_json(const BatchReport& report, unsigned threads, bool include_output) {
  Object o;
  o.emplace("threads", static_cast<int64_t>(threads));
  Array programs;
  for (const ProgramReport& p : report.programs) {
    programs.push_back(program_report_to_json(p, include_output));
  }
  o.emplace("programs", std::move(programs));
  o.emplace("stats", stats_to_json(report.stats));
  // Raw cross-program cache counters (lookups/entries deterministic; the
  // hit/miss split may vary with scheduling — see CrossProgramCache::Stats).
  Object shared;
  shared.emplace("lookups", static_cast<int64_t>(report.shared_cache.lookups));
  shared.emplace("hits", static_cast<int64_t>(report.shared_cache.hits));
  shared.emplace("misses", static_cast<int64_t>(report.shared_cache.misses));
  shared.emplace("inserts", static_cast<int64_t>(report.shared_cache.inserts));
  shared.emplace("entries", static_cast<int64_t>(report.shared_cache.entries));
  shared.emplace("preloaded", static_cast<int64_t>(report.shared_cache.preloaded));
  shared.emplace("preloaded_hits",
                 static_cast<int64_t>(report.shared_cache.preloaded_hits));
  o.emplace("cross_program_cache", std::move(shared));
  return Value(std::move(o));
}

}  // namespace sspar::driver
