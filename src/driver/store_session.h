// Glue between the batch driver and the persistent summary store: one
// warm-cache batch run. Both one-shot `sspar-analyze --store` and every
// `--serve` request go through run_with_store, so a daemon response is
// byte-identical to the one-shot report for the same inputs and store state.
#pragma once

#include <vector>

#include "driver/batch_analyzer.h"
#include "store/summary_store.h"

namespace sspar::driver {

// Runs one batch against an optional persistent store:
//
//   1. preload the store's records into a fresh CrossProgramCache (hits on
//      these count as store hits),
//   2. run the batch sharing that cache,
//   3. absorb the cache back (first-writer-wins; hit keys' generations
//      bumped) and commit() — a full flush, or just the fsync'd WAL batch
//      when the store runs in journal mode,
//   4. fill BatchStats::store_loaded/evicted/flushed/journal_replays from
//      the store.
//
// `store` may be null — then this is exactly BatchAnalyzer::run. The store
// steps are also skipped when options.shared_summaries is false (no shared
// cache means nothing to preload into or absorb from).
BatchReport run_with_store(const std::vector<ProgramInput>& inputs, BatchOptions options,
                           store::SummaryStore* store,
                           const BatchAnalyzer::ReportCallback& on_report = nullptr);

}  // namespace sspar::driver
