// JSON views of the analysis results: per-loop verdicts, index-array fact
// databases, per-program reports, and corpus-wide batch statistics. Powers
// `sspar-analyze --json`; the schema is part of the public contract (tests
// prove stats round-trip through support::json::parse).
#pragma once

#include "core/facts.h"
#include "core/parallelizer.h"
#include "driver/batch_analyzer.h"
#include "support/json.h"

namespace sspar::driver {

// One loop verdict:
//   {"loop_id":3,"line":24,"parallel":true,"subscripted":true,
//    "property":"monotonic","peeled":true,"reason":"...","blockers":[...],
//    "privates":["count"]}
support::json::Value verdict_to_json(const core::LoopVerdict& verdict);

// One fact database, keyed by array name; each array maps to its fact lists:
//   {"rowptr":{"identities":[...],"values":[...],"steps":[...],
//              "injectives":[...]}}
// Sections and ranges are rendered as symbolic strings.
support::json::Value facts_to_json(const core::FactDB& facts, const sym::SymbolTable& symbols);

// One program's pipeline outcome, including structured diagnostics
// (code/severity/line/column/message) and per-stage timings in ms.
support::json::Value program_report_to_json(const ProgramReport& report, bool include_output);

// The aggregate statistics block. Inverse of stats_from_json.
support::json::Value stats_to_json(const BatchStats& stats);

// Rebuilds BatchStats from stats_to_json output (round-trip; used by tests
// and downstream consumers of --json).
BatchStats stats_from_json(const support::json::Value& value);

// The whole --json document: {"threads":N,"programs":[...],"stats":{...}}.
support::json::Value batch_report_to_json(const BatchReport& report, unsigned threads,
                                          bool include_output = false);

}  // namespace sspar::driver
