// sspar-analyze: batch-analysis CLI over the built-in corpus or user files.
//
//   sspar-analyze                       # analyze the whole benchmark corpus
//   sspar-analyze --suite=npb           # one suite only
//   sspar-analyze --threads=4 --emit    # 4 threads, print annotated sources
//   sspar-analyze --json                # machine-readable report on stdout
//   sspar-analyze --assume n=1 prog.c   # analyze mini-C files instead
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "driver/batch_analyzer.h"
#include "driver/json_report.h"

namespace {

using sspar::driver::BatchAnalyzer;
using sspar::driver::BatchOptions;
using sspar::driver::BatchReport;
using sspar::driver::ProgramInput;
using sspar::driver::ProgramReport;

void print_usage(std::ostream& os) {
  os << "usage: sspar-analyze [options] [file.c ...]\n"
        "\n"
        "Analyzes mini-C programs for parallelizable subscripted-subscript\n"
        "loops. With no files, runs over the built-in benchmark corpus.\n"
        "\n"
        "options:\n"
        "  --threads=N      degree of parallelism (default 0 = one lane per\n"
        "                   logical core; 1 = serial on the calling thread)\n"
        "  --suite=NAME     corpus subset: paper | npb | suitesparse\n"
        "  --emit           also print the OpenMP-annotated source\n"
        "  --no-shared-cache disable the cross-program summary cache (entries\n"
        "                   with identical helper functions then re-derive\n"
        "                   their summaries; verdicts are unaffected)\n"
        "  --json           machine-readable JSON report on stdout (verdicts,\n"
        "                   structured diagnostics, per-stage timings, stats)\n"
        "  --quiet          aggregate statistics only\n"
        "  --assume VAR=MIN assume global VAR >= MIN for file inputs (repeatable)\n"
        "  --help           this message\n";
}

bool parse_int(const std::string& text, int64_t* value) {
  try {
    size_t consumed = 0;
    *value = std::stoll(text, &consumed);
    return consumed == text.size();
  } catch (const std::exception&) {
    return false;
  }
}

bool parse_suite(const std::string& name, sspar::corpus::Suite* suite) {
  if (name == "paper") {
    *suite = sspar::corpus::Suite::Paper;
  } else if (name == "npb") {
    *suite = sspar::corpus::Suite::NPB;
  } else if (name == "suitesparse") {
    *suite = sspar::corpus::Suite::SuiteSparse;
  } else {
    return false;
  }
  return true;
}

void print_program(const ProgramReport& report, bool emit, std::ostream& os) {
  os << "== " << report.name;
  if (!report.ok) {
    os << "  ERROR\n" << report.error << "\n";
    return;
  }
  os << "  (" << report.loops << " loops, " << report.subscripted << " subscripted, "
     << report.parallel << " parallel, " << report.parallel_subscripted
     << " parallel+subscripted)\n";
  for (const auto& v : report.result.verdicts) {
    os << "  L" << v.loop_id;
    if (v.loop && v.loop->location.valid()) os << " @" << v.loop->location.to_string();
    os << (v.parallel ? "  parallel" : (v.hybrid ? "  hybrid  " : "  serial  "));
    if (v.uses_subscripted_subscripts) os << "  [subscripted]";
    if (v.parallel && !v.reason.empty()) os << "  " << v.reason;
    if (v.hybrid) {
      os << "  runtime check: " << sspar::core::property_name(v.hybrid_property) << " of '"
         << v.hybrid_index_array << "'";
    }
    if (!v.parallel && !v.hybrid && !v.blockers.empty())
      os << "  blockers: " << v.blockers.front();
    os << "\n";
  }
  if (emit) os << "---- annotated source ----\n" << report.result.output << "\n";
}

void print_stats(const BatchReport& report, unsigned threads, std::ostream& os) {
  const auto& s = report.stats;
  os << "== aggregate (" << s.programs << " programs, " << threads << " threads)\n"
     << "  analyzed ok:            " << (s.programs - s.failed) << "\n"
     << "  failed:                 " << s.failed << "\n"
     << "  loops:                  " << s.loops << "\n"
     << "  subscripted loops:      " << s.subscripted << "\n"
     << "  parallel loops:         " << s.parallel << "\n"
     << "  parallel+subscripted:   " << s.parallel_subscripted << "\n"
     << "  loops annotated (omp):  " << s.annotated << "\n"
     << "  coverage:               " << s.static_parallel << " static-parallel, "
     << s.hybrid_parallel << " hybrid, " << s.serial << " serial\n"
     << "  programs with pattern:  " << s.programs_with_pattern << "\n";
  if (s.summaries_computed > 0 || s.summary_applications > 0) {
    os << "  function summaries:     " << s.summaries_computed << " materialized ("
       << s.summary_context_computed << " context-sensitive), " << s.summary_cache_hits
       << " cache hits, " << s.summary_applications << " call-site applications\n";
  }
  if (report.shared_cache.lookups > 0) {
    os << "  cross-program cache:    " << report.shared_cache.entries << " entries, "
       << report.shared_cache.hits << "/" << report.shared_cache.lookups
       << " lookups rehydrated\n";
  }
  if (!s.property_counts.empty()) {
    os << "  enabling properties:\n";
    for (const auto& [key, count] : s.property_counts) {
      os << "    " << key << ": " << count << "\n";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  BatchOptions options;
  bool emit = false;
  bool quiet = false;
  bool json = false;
  bool have_suite = false;
  sspar::corpus::Suite suite = sspar::corpus::Suite::Paper;
  std::vector<std::string> files;
  sspar::pipeline::Assumptions assumptions;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return 0;
    } else if (arg.rfind("--threads=", 0) == 0) {
      int64_t threads = 0;
      if (!parse_int(arg.substr(10), &threads) || threads < 0 || threads > 1024) {
        std::cerr << "sspar-analyze: --threads expects an integer in [0, 1024], got '"
                  << arg.substr(10) << "'\n";
        return 2;
      }
      options.threads = static_cast<unsigned>(threads);
    } else if (arg.rfind("--suite=", 0) == 0) {
      if (!parse_suite(arg.substr(8), &suite)) {
        std::cerr << "sspar-analyze: unknown suite '" << arg.substr(8) << "'\n";
        return 2;
      }
      have_suite = true;
    } else if (arg == "--emit") {
      emit = true;
    } else if (arg == "--no-shared-cache") {
      options.shared_summaries = false;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--assume" && i + 1 < argc) {
      std::string spec = argv[++i];
      if (!assumptions.add_spec(spec)) {
        std::cerr << "sspar-analyze: --assume expects VAR=MIN, got '" << spec << "'\n";
        return 2;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "sspar-analyze: unknown option '" << arg << "'\n";
      print_usage(std::cerr);
      return 2;
    } else {
      files.push_back(arg);
    }
  }

  if (!files.empty() && have_suite) {
    std::cerr << "sspar-analyze: --suite only applies to corpus runs, not file inputs\n";
    return 2;
  }
  if (files.empty() && !assumptions.empty()) {
    std::cerr << "sspar-analyze: --assume only applies to file inputs; corpus entries "
                 "carry their own assumptions\n";
    return 2;
  }

  std::vector<ProgramInput> inputs;
  if (files.empty()) {
    inputs = BatchAnalyzer::corpus_inputs();
    if (have_suite) {
      std::erase_if(inputs, [&](const ProgramInput& input) {
        const sspar::corpus::Entry* e = sspar::corpus::find_entry(input.name);
        return !e || e->suite != suite;
      });
    }
  } else {
    for (const std::string& path : files) {
      std::ifstream in(path);
      if (!in) {
        std::cerr << "sspar-analyze: cannot open '" << path << "'\n";
        return 2;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      inputs.push_back(ProgramInput{path, buffer.str(), assumptions});
    }
  }

  BatchAnalyzer analyzer(options);
  BatchReport report = analyzer.run(inputs);

  if (json) {
    std::cout << sspar::driver::batch_report_to_json(report, analyzer.threads(), emit).dump(2)
              << "\n";
    return report.stats.failed == 0 ? 0 : 1;
  }
  if (!quiet) {
    for (const ProgramReport& p : report.programs) print_program(p, emit, std::cout);
  }
  print_stats(report, analyzer.threads(), std::cout);
  return report.stats.failed == 0 ? 0 : 1;
}
