// sspar-analyze: batch-analysis CLI over the built-in corpus or user files.
//
//   sspar-analyze                       # analyze the whole benchmark corpus
//   sspar-analyze --suite=npb           # one suite only
//   sspar-analyze --threads=4 --emit    # 4 threads, print annotated sources
//   sspar-analyze --json                # machine-readable report on stdout
//   sspar-analyze --assume n=1 prog.c   # analyze mini-C files instead
//   sspar-analyze --json --store=s.bin  # warm-start from a persistent store
//   sspar-analyze --serve --socket=S    # long-lived analysis daemon
//   sspar-analyze --connect=S --json    # send this run to a daemon instead
//   sspar-analyze --incremental a.c b.c # replay edits through one warm engine
#include <csignal>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "driver/batch_analyzer.h"
#include "driver/json_report.h"
#include "driver/store_session.h"
#include "incremental/incremental_engine.h"
#include "server/analysis_server.h"
#include "server/client.h"
#include "server/protocol.h"
#include "store/summary_store.h"

namespace {

using sspar::driver::BatchAnalyzer;
using sspar::driver::BatchOptions;
using sspar::driver::BatchReport;
using sspar::driver::ProgramInput;
using sspar::driver::ProgramReport;

void print_usage(std::ostream& os) {
  os << "usage: sspar-analyze [options] [file.c ...]\n"
        "\n"
        "Analyzes mini-C programs for parallelizable subscripted-subscript\n"
        "loops. With no files, runs over the built-in benchmark corpus.\n"
        "\n"
        "options:\n"
        "  --threads=N      degree of parallelism (default 0 = one lane per\n"
        "                   logical core; 1 = serial on the calling thread)\n"
        "  --suite=NAME     corpus subset: paper | npb | suitesparse\n"
        "  --emit           also print the OpenMP-annotated source\n"
        "  --no-shared-cache disable the cross-program summary cache (entries\n"
        "                   with identical helper functions then re-derive\n"
        "                   their summaries; verdicts are unaffected)\n"
        "  --json           machine-readable JSON report on stdout (verdicts,\n"
        "                   structured diagnostics, per-stage timings, stats)\n"
        "  --quiet          aggregate statistics only\n"
        "  --assume VAR=MIN assume global VAR >= MIN for file inputs (repeatable)\n"
        "\n"
        "persistent store:\n"
        "  --store=PATH     load/save function summaries from a disk store; a\n"
        "                   second run over the same code starts warm\n"
        "  --store-cap=N    max records kept across a flush (default 4096;\n"
        "                   coldest generations evicted first)\n"
        "  --no-store       ignore any --store flag (one-shot cold run)\n"
        "  --journal        crash-safe write-ahead journal: absorbed summaries\n"
        "                   are fsync'd to <store>.journal per run and replayed\n"
        "                   on open; the full store rewrite only happens at\n"
        "                   checkpoints, so a crash loses at most the in-flight\n"
        "                   run's records\n"
        "\n"
        "incremental analysis:\n"
        "  --incremental    treat the file arguments as SUCCESSIVE VERSIONS of\n"
        "                   one program and replay them through a warm\n"
        "                   incremental engine: each update re-analyzes only\n"
        "                   the dirty cone (changed functions + callers) and\n"
        "                   reports the diagnostic delta plus reuse stats;\n"
        "                   verdicts are byte-identical to a cold run of each\n"
        "                   version (composes with --store, --emit, --json)\n"
        "\n"
        "analysis server:\n"
        "  --serve          run as a long-lived daemon answering analyze\n"
        "                   requests over a Unix-domain socket (requires\n"
        "                   --socket; SIGTERM/SIGINT flush the store and exit)\n"
        "  --socket=PATH    the socket path to listen on\n"
        "  --connect=PATH   ship this invocation's inputs to a daemon at PATH\n"
        "                   and print its response (with --json, the report is\n"
        "                   byte-identical to a local --json run against the\n"
        "                   same store state)\n"
        "  --shutdown       with --connect: ask the daemon to exit\n"
        "  --max-sessions=N serve: LRU cap on warm incremental sessions; opening\n"
        "                   past it evicts the least recently used (default 8)\n"
        "  --session-idle-ms=N  serve: purge sessions idle past N ms; later\n"
        "                   requests on them answer E_NO_SESSION (default 0 = keep)\n"
        "\n"
        "resilience (see README \"Resilience & operational limits\"):\n"
        "  --max-connections=N   serve: live-connection cap; excess clients are\n"
        "                   shed with E_OVERLOADED (default 64)\n"
        "  --request-timeout-ms=N  serve: per-request deadline; an analyze past\n"
        "                   it answers E_DEADLINE (default 0 = none)\n"
        "  --timeout-ms=N   connect: client-side connect/read timeout so a hung\n"
        "                   daemon fails fast (default 30000; 0 = wait forever)\n"
        "  --help           this message\n";
}

bool parse_int(const std::string& text, int64_t* value) {
  try {
    size_t consumed = 0;
    *value = std::stoll(text, &consumed);
    return consumed == text.size();
  } catch (const std::exception&) {
    return false;
  }
}

bool parse_suite(const std::string& name, sspar::corpus::Suite* suite) {
  if (name == "paper") {
    *suite = sspar::corpus::Suite::Paper;
  } else if (name == "npb") {
    *suite = sspar::corpus::Suite::NPB;
  } else if (name == "suitesparse") {
    *suite = sspar::corpus::Suite::SuiteSparse;
  } else {
    return false;
  }
  return true;
}

void print_program(const ProgramReport& report, bool emit, std::ostream& os) {
  os << "== " << report.name;
  if (!report.ok) {
    os << "  ERROR\n" << report.error << "\n";
    return;
  }
  os << "  (" << report.loops << " loops, " << report.subscripted << " subscripted, "
     << report.parallel << " parallel, " << report.parallel_subscripted
     << " parallel+subscripted)\n";
  for (const auto& v : report.result.verdicts) {
    os << "  L" << v.loop_id;
    if (v.loop && v.loop->location.valid()) os << " @" << v.loop->location.to_string();
    os << (v.parallel ? "  parallel" : (v.hybrid ? "  hybrid  " : "  serial  "));
    if (v.uses_subscripted_subscripts) os << "  [subscripted]";
    if (v.parallel && !v.reason.empty()) os << "  " << v.reason;
    if (v.hybrid) {
      os << "  runtime check: " << sspar::core::property_name(v.hybrid_property) << " of '"
         << v.hybrid_index_array << "'";
    }
    if (!v.parallel && !v.hybrid && !v.blockers.empty())
      os << "  blockers: " << v.blockers.front();
    os << "\n";
  }
  if (emit) os << "---- annotated source ----\n" << report.result.output << "\n";
}

void print_stats(const BatchReport& report, unsigned threads, std::ostream& os) {
  const auto& s = report.stats;
  os << "== aggregate (" << s.programs << " programs, " << threads << " threads)\n"
     << "  analyzed ok:            " << (s.programs - s.failed) << "\n"
     << "  failed:                 " << s.failed << "\n"
     << "  loops:                  " << s.loops << "\n"
     << "  subscripted loops:      " << s.subscripted << "\n"
     << "  parallel loops:         " << s.parallel << "\n"
     << "  parallel+subscripted:   " << s.parallel_subscripted << "\n"
     << "  loops annotated (omp):  " << s.annotated << "\n"
     << "  coverage:               " << s.static_parallel << " static-parallel, "
     << s.hybrid_parallel << " hybrid, " << s.serial << " serial\n"
     << "  programs with pattern:  " << s.programs_with_pattern << "\n";
  if (s.summaries_computed > 0 || s.summary_applications > 0) {
    os << "  function summaries:     " << s.summaries_computed << " materialized ("
       << s.summary_context_computed << " context-sensitive, " << s.summary_scc
       << " recursive-scc), " << s.summary_cache_hits << " cache hits, "
       << s.summary_applications << " call-site applications\n";
  }
  if (report.shared_cache.lookups > 0) {
    os << "  cross-program cache:    " << report.shared_cache.entries << " entries, "
       << report.shared_cache.hits << "/" << report.shared_cache.lookups
       << " lookups rehydrated\n";
  }
  if (s.store_loaded > 0 || s.store_flushed > 0) {
    os << "  persistent store:       " << s.store_loaded << " loaded, " << s.store_hits
       << " hits, " << s.store_misses << " misses, " << s.store_evicted << " evicted, "
       << s.store_flushed << " flushed\n";
  }
  if (s.journal_replays > 0) {
    os << "  store journal:          " << s.journal_replays << " records replayed at open\n";
  }
  if (!s.property_counts.empty()) {
    os << "  enabling properties:\n";
    for (const auto& [key, count] : s.property_counts) {
      os << "    " << key << ": " << count << "\n";
    }
  }
}

void print_update(const std::string& name, const sspar::incremental::UpdateResult& result,
                  bool emit, std::ostream& os) {
  os << "== update " << name;
  if (!result.ok) {
    os << "  ERROR\n" << result.error << "\n";
    return;
  }
  int parallel = 0;
  for (const auto& v : result.verdicts) {
    if (v.parallel) ++parallel;
  }
  const auto& s = result.stats;
  os << "  (" << result.verdicts.size() << " loops, " << parallel << " parallel)\n"
     << "  functions: " << s.functions_total << " total, " << s.dirty << " dirty, "
     << s.reanalyzed << " re-analyzed\n"
     << "  reused:    " << s.reused_summaries << " summaries, " << s.reused_verdicts
     << " verdicts\n"
     << "  diags:     +" << result.delta.added.size() << " -" << result.delta.removed.size()
     << " =" << result.delta.unchanged << "\n";
  for (const auto& d : result.delta.added) os << "    + " << d.to_string() << "\n";
  for (const auto& d : result.delta.removed) os << "    - " << d.to_string() << "\n";
  if (emit) os << "---- annotated source ----\n" << result.output << "\n";
}

int run_incremental(const std::vector<ProgramInput>& inputs, const BatchOptions& options,
                    sspar::store::SummaryStore* store, bool emit, bool json, bool quiet) {
  sspar::incremental::EngineOptions engine_options;
  engine_options.analyzer = options.analyzer;
  engine_options.store = store;
  if (!inputs.empty()) engine_options.assumptions = inputs.front().assumptions;
  sspar::incremental::IncrementalEngine engine(engine_options);
  int failed = 0;
  sspar::support::json::Array updates_json;
  for (const ProgramInput& input : inputs) {
    sspar::incremental::UpdateResult result = engine.update(input.source);
    if (!result.ok) ++failed;
    if (json) {
      sspar::support::json::Object o;
      o.emplace("name", input.name);
      o.emplace("ok", result.ok);
      if (!result.ok) {
        o.emplace("error", result.error);
      } else {
        int parallel = 0;
        for (const auto& v : result.verdicts) {
          if (v.parallel) ++parallel;
        }
        o.emplace("loops", static_cast<int64_t>(result.verdicts.size()));
        o.emplace("parallel", static_cast<int64_t>(parallel));
        o.emplace("stats", sspar::incremental::to_json(result.stats));
        o.emplace("delta", sspar::incremental::to_json(result.delta));
        if (emit) o.emplace("output", result.output);
      }
      sspar::support::json::Array diags;
      for (const auto& d : result.diagnostics) {
        diags.push_back(sspar::incremental::diagnostic_to_json(d));
      }
      o.emplace("diagnostics", std::move(diags));
      updates_json.push_back(std::move(o));
    } else if (!quiet) {
      print_update(input.name, result, emit, std::cout);
    }
  }
  engine.flush_store();
  if (json) {
    sspar::support::json::Object root;
    sspar::support::json::Object incr;
    incr.emplace("updates", std::move(updates_json));
    incr.emplace("totals", sspar::incremental::to_json(engine.totals()));
    root.emplace("incremental", std::move(incr));
    std::cout << sspar::support::json::Value(std::move(root)).dump(2) << "\n";
  } else {
    const auto& t = engine.totals();
    std::cout << "== incremental totals (" << t.updates << " updates)\n"
              << "  functions seen:     " << t.functions_total << "\n"
              << "  dirty:              " << t.dirty << "\n"
              << "  re-analyzed:        " << t.reanalyzed << "\n"
              << "  reused summaries:   " << t.reused_summaries << "\n"
              << "  reused verdicts:    " << t.reused_verdicts << "\n"
              << "  dirty-cone ratio:   " << t.dirty_cone_ratio() << "\n";
  }
  return failed == 0 ? 0 : 1;
}

sspar::server::AnalysisServer* g_server = nullptr;

void handle_signal(int) {
  // Async-signal-safe: request_stop only write()s to the server's self-pipe;
  // the orderly shutdown (join + store flush) runs on the main thread.
  if (g_server != nullptr) g_server->request_stop();
}

int run_serve(const BatchOptions& options, const std::string& socket_path,
              sspar::store::SummaryStore* store, int64_t max_connections,
              int64_t request_timeout_ms, int64_t max_sessions,
              int64_t session_idle_ms) {
  sspar::server::ServerOptions server_options;
  server_options.socket_path = socket_path;
  server_options.threads = options.threads;
  server_options.analyzer = options.analyzer;
  server_options.store = store;
  server_options.max_connections = static_cast<size_t>(max_connections);
  server_options.request_timeout_ms = static_cast<int>(request_timeout_ms);
  server_options.max_sessions = static_cast<size_t>(max_sessions);
  server_options.session_idle_ms = static_cast<int>(session_idle_ms);
  sspar::server::AnalysisServer server(server_options);
  std::string error;
  if (!server.start(&error)) {
    std::cerr << "sspar-analyze: " << error << "\n";
    return 2;
  }
  g_server = &server;
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGINT, handle_signal);
  std::cerr << "sspar-analyze: serving on " << socket_path << "\n";
  server.wait();  // returns after stop(): store flushed, socket unlinked
  g_server = nullptr;
  std::cerr << "sspar-analyze: served " << server.requests() << " requests, shut down\n";
  return 0;
}

// Renders either error shape: the structured {"code","message"} object or a
// plain string (older servers).
std::string describe_server_error(const sspar::support::json::Value& response) {
  const auto* why = response.find("error");
  if (why == nullptr) return response.dump();
  if (why->is_string()) return why->as_string();
  if (why->is_object()) {
    const auto* code = why->find("code");
    const auto* message = why->find("message");
    std::string text;
    if (code && code->is_string()) text += "[" + code->as_string() + "] ";
    if (message && message->is_string()) text += message->as_string();
    if (!text.empty()) return text;
  }
  return response.dump();
}

int run_connect(const std::vector<ProgramInput>& inputs, const BatchOptions& options,
                const std::string& socket_path, bool emit, bool json,
                bool shutdown_daemon, int64_t timeout_ms) {
  sspar::server::Client client;
  client.set_timeout_ms(static_cast<int>(timeout_ms));
  std::string error;
  if (!client.connect(socket_path, &error)) {
    std::cerr << "sspar-analyze: " << error << "\n";
    return 2;
  }
  if (shutdown_daemon) {
    auto response = client.request(
        sspar::server::make_simple_request(sspar::server::Method::Shutdown), &error);
    if (!response) {
      std::cerr << "sspar-analyze: " << error << "\n";
      return 2;
    }
    std::cout << response->dump(2) << "\n";
    return 0;
  }
  auto response = client.request(
      sspar::server::make_analyze_request(inputs, emit, options.threads), &error);
  if (!response) {
    std::cerr << "sspar-analyze: " << error << "\n";
    return 2;
  }
  const auto* ok = response->find("ok");
  if (!ok || !ok->is_bool() || !ok->as_bool()) {
    std::cerr << "sspar-analyze: server error: " << describe_server_error(*response)
              << "\n";
    return 1;
  }
  const auto* report_json = response->find("report");
  if (!report_json) {
    std::cerr << "sspar-analyze: server response carries no report\n";
    return 1;
  }
  if (json) {
    // Same shape and key order as a local `--json` run: the server built
    // this object with batch_report_to_json and objects dump sorted.
    std::cout << report_json->dump(2) << "\n";
  } else {
    sspar::driver::BatchStats stats;
    if (const auto* stats_json = report_json->find("stats")) {
      stats = sspar::driver::stats_from_json(*stats_json);
    }
    std::cout << "== remote aggregate (" << stats.programs << " programs)\n"
              << "  parallel loops:        " << stats.parallel << "\n"
              << "  parallel+subscripted:  " << stats.parallel_subscripted << "\n"
              << "  persistent store hits: " << stats.store_hits << "\n";
  }
  const auto* stats_json = report_json->find("stats");
  int64_t failed = stats_json ? stats_json->int_or("failed", 0) : 0;
  return failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  BatchOptions options;
  bool emit = false;
  bool quiet = false;
  bool json = false;
  bool have_suite = false;
  bool serve = false;
  bool incremental = false;
  bool no_store = false;
  bool shutdown_daemon = false;
  bool journal = false;
  std::string store_path;
  std::string socket_path;
  std::string connect_path;
  int64_t store_cap = 4096;
  int64_t max_connections = 64;
  int64_t request_timeout_ms = 0;
  int64_t client_timeout_ms = 30000;
  int64_t max_sessions = 8;
  int64_t session_idle_ms = 0;
  sspar::corpus::Suite suite = sspar::corpus::Suite::Paper;
  std::vector<std::string> files;
  sspar::pipeline::Assumptions assumptions;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return 0;
    } else if (arg.rfind("--threads=", 0) == 0) {
      int64_t threads = 0;
      if (!parse_int(arg.substr(10), &threads) || threads < 0 || threads > 1024) {
        std::cerr << "sspar-analyze: --threads expects an integer in [0, 1024], got '"
                  << arg.substr(10) << "'\n";
        return 2;
      }
      options.threads = static_cast<unsigned>(threads);
    } else if (arg.rfind("--suite=", 0) == 0) {
      if (!parse_suite(arg.substr(8), &suite)) {
        std::cerr << "sspar-analyze: unknown suite '" << arg.substr(8) << "'\n";
        return 2;
      }
      have_suite = true;
    } else if (arg == "--emit") {
      emit = true;
    } else if (arg == "--no-shared-cache") {
      options.shared_summaries = false;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--store=", 0) == 0) {
      store_path = arg.substr(8);
      if (store_path.empty()) {
        std::cerr << "sspar-analyze: --store expects a file path\n";
        return 2;
      }
    } else if (arg.rfind("--store-cap=", 0) == 0) {
      if (!parse_int(arg.substr(12), &store_cap) || store_cap < 1) {
        std::cerr << "sspar-analyze: --store-cap expects a positive integer\n";
        return 2;
      }
    } else if (arg == "--no-store") {
      no_store = true;
    } else if (arg == "--journal") {
      journal = true;
    } else if (arg.rfind("--max-connections=", 0) == 0) {
      if (!parse_int(arg.substr(18), &max_connections) || max_connections < 1) {
        std::cerr << "sspar-analyze: --max-connections expects a positive integer\n";
        return 2;
      }
    } else if (arg.rfind("--request-timeout-ms=", 0) == 0) {
      if (!parse_int(arg.substr(21), &request_timeout_ms) || request_timeout_ms < 0) {
        std::cerr << "sspar-analyze: --request-timeout-ms expects a non-negative integer\n";
        return 2;
      }
    } else if (arg.rfind("--max-sessions=", 0) == 0) {
      if (!parse_int(arg.substr(15), &max_sessions) || max_sessions < 1) {
        std::cerr << "sspar-analyze: --max-sessions expects a positive integer\n";
        return 2;
      }
    } else if (arg.rfind("--session-idle-ms=", 0) == 0) {
      if (!parse_int(arg.substr(18), &session_idle_ms) || session_idle_ms < 0) {
        std::cerr << "sspar-analyze: --session-idle-ms expects a non-negative integer\n";
        return 2;
      }
    } else if (arg.rfind("--timeout-ms=", 0) == 0) {
      if (!parse_int(arg.substr(13), &client_timeout_ms) || client_timeout_ms < 0) {
        std::cerr << "sspar-analyze: --timeout-ms expects a non-negative integer\n";
        return 2;
      }
    } else if (arg == "--serve") {
      serve = true;
    } else if (arg == "--incremental") {
      incremental = true;
    } else if (arg.rfind("--socket=", 0) == 0) {
      socket_path = arg.substr(9);
    } else if (arg.rfind("--connect=", 0) == 0) {
      connect_path = arg.substr(10);
    } else if (arg == "--shutdown") {
      shutdown_daemon = true;
    } else if (arg == "--assume" && i + 1 < argc) {
      std::string spec = argv[++i];
      if (!assumptions.add_spec(spec)) {
        std::cerr << "sspar-analyze: --assume expects VAR=MIN, got '" << spec << "'\n";
        return 2;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "sspar-analyze: unknown option '" << arg << "'\n";
      print_usage(std::cerr);
      return 2;
    } else {
      files.push_back(arg);
    }
  }

  if (!files.empty() && have_suite) {
    std::cerr << "sspar-analyze: --suite only applies to corpus runs, not file inputs\n";
    return 2;
  }
  if (files.empty() && !assumptions.empty()) {
    std::cerr << "sspar-analyze: --assume only applies to file inputs; corpus entries "
                 "carry their own assumptions\n";
    return 2;
  }
  if (serve && socket_path.empty()) {
    std::cerr << "sspar-analyze: --serve requires --socket=PATH\n";
    return 2;
  }
  if (serve && !connect_path.empty()) {
    std::cerr << "sspar-analyze: --serve and --connect are mutually exclusive\n";
    return 2;
  }
  if (incremental && files.empty()) {
    std::cerr << "sspar-analyze: --incremental expects file arguments (successive "
                 "versions of one program)\n";
    return 2;
  }
  if (incremental && (serve || !connect_path.empty())) {
    std::cerr << "sspar-analyze: --incremental runs locally; it cannot combine with "
                 "--serve/--connect (use the open_session/update protocol instead)\n";
    return 2;
  }
  if (shutdown_daemon && connect_path.empty()) {
    std::cerr << "sspar-analyze: --shutdown requires --connect=PATH\n";
    return 2;
  }
  if (no_store) store_path.clear();
  if (journal && store_path.empty() && !no_store) {
    std::cerr << "sspar-analyze: --journal requires --store=PATH\n";
    return 2;
  }

  sspar::store::StoreOptions store_options;
  store_options.max_entries = static_cast<size_t>(store_cap);
  store_options.journal = journal;
  sspar::store::SummaryStore store(store_path, store_options);
  sspar::store::SummaryStore* store_ptr = nullptr;
  if (!store_path.empty()) {
    if (!store.open()) {
      std::cerr << "sspar-analyze: store '" << store_path
                << "' was corrupt; quarantined to '" << store_path
                << ".corrupt' and starting empty\n";
    }
    store_ptr = &store;
  }

  if (serve) {
    return run_serve(options, socket_path, store_ptr, max_connections,
                     request_timeout_ms, max_sessions, session_idle_ms);
  }

  std::vector<ProgramInput> inputs;
  if (files.empty()) {
    inputs = BatchAnalyzer::corpus_inputs();
    if (have_suite) {
      std::erase_if(inputs, [&](const ProgramInput& input) {
        const sspar::corpus::Entry* e = sspar::corpus::find_entry(input.name);
        return !e || e->suite != suite;
      });
    }
  } else {
    for (const std::string& path : files) {
      std::ifstream in(path);
      if (!in) {
        std::cerr << "sspar-analyze: cannot open '" << path << "'\n";
        return 2;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      inputs.push_back(ProgramInput{path, buffer.str(), assumptions});
    }
  }

  if (!connect_path.empty()) {
    return run_connect(inputs, options, connect_path, emit, json, shutdown_daemon,
                       client_timeout_ms);
  }

  if (incremental) {
    return run_incremental(inputs, options, store_ptr, emit, json, quiet);
  }

  BatchAnalyzer analyzer(options);
  BatchReport report = sspar::driver::run_with_store(inputs, options, store_ptr);

  if (json) {
    std::cout << sspar::driver::batch_report_to_json(report, analyzer.threads(), emit).dump(2)
              << "\n";
    return report.stats.failed == 0 ? 0 : 1;
  }
  if (!quiet) {
    for (const ProgramReport& p : report.programs) print_program(p, emit, std::cout);
  }
  print_stats(report, analyzer.threads(), std::cout);
  return report.stats.failed == 0 ? 0 : 1;
}
