#include "driver/store_session.h"

namespace sspar::driver {

BatchReport run_with_store(const std::vector<ProgramInput>& inputs, BatchOptions options,
                           store::SummaryStore* store,
                           const BatchAnalyzer::ReportCallback& on_report) {
  ipa::CrossProgramCache cache;
  const bool use_store = store != nullptr && options.shared_summaries;
  size_t preloaded = 0;
  if (use_store) {
    preloaded = store->preload(cache);
    options.share_with = &cache;
  }
  BatchAnalyzer analyzer(options);
  BatchReport report = analyzer.run(inputs, on_report);
  if (use_store) {
    store->absorb(cache);
    // commit(), not flush(): in journal mode the absorb's fsync'd WAL batch
    // already made the run durable, so the O(store) rewrite is deferred to a
    // checkpoint trigger.
    store->commit();
    const store::SummaryStore::Stats s = store->stats();
    report.stats.store_loaded = static_cast<int>(preloaded);
    report.stats.store_evicted = static_cast<int>(s.evicted);
    report.stats.store_flushed = static_cast<int>(s.flushed);
    report.stats.journal_replays = static_cast<int>(s.journal_replayed);
  }
  return report;
}

}  // namespace sspar::driver
