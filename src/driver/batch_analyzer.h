// Concurrent batch-analysis driver: runs the full pipeline (parse -> analyze
// -> parallelize -> annotate) over many programs on a rt::ThreadPool and
// aggregates per-loop verdicts into corpus-wide statistics — the paper's
// Fig. 1 survey numbers as a programmatic API.
//
// Results are deterministic: reports come back in input order and every
// aggregate is computed serially from them, so a 1-thread and an 8-thread run
// produce identical output. A malformed program never aborts the batch; it
// yields a per-program diagnostic and counts toward `stats.failed`.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/analyzer.h"
#include "transform/omp_emitter.h"

namespace sspar::driver {

// One program to analyze. `assumptions` declares lower bounds for global
// symbols (problem sizes known to be positive), as in transform::translate_source.
struct ProgramInput {
  std::string name;
  std::string source;
  std::vector<std::pair<std::string, int64_t>> assumptions;
};

// Pipeline output for one program. `result.parsed` owns the AST that
// `result.verdicts` point into, so downstream consumers (e.g. the dynamic
// dependence oracle in the differential tests) can keep interrogating loops.
struct ProgramReport {
  std::string name;
  bool ok = false;
  std::string error;  // frontend diagnostics or exception text when !ok
  transform::TranslateResult result;

  // Per-program counts over result.verdicts (all zero when !ok).
  int loops = 0;
  int subscripted = 0;
  int parallel = 0;
  int parallel_subscripted = 0;
};

// Corpus-wide aggregates (the Fig. 1 survey as numbers).
struct BatchStats {
  int programs = 0;
  int failed = 0;
  int loops = 0;
  int subscripted = 0;
  int parallel = 0;
  int parallel_subscripted = 0;
  int annotated = 0;
  // Programs containing >= 1 parallel loop with a subscripted subscript.
  int programs_with_pattern = 0;
  // Enabling-property histogram over parallel subscripted-subscript loops
  // (keyed by the stable prefix of LoopVerdict::reason).
  std::map<std::string, int> property_counts;

  bool operator==(const BatchStats& other) const;
};

struct BatchReport {
  std::vector<ProgramReport> programs;  // in input order
  BatchStats stats;
};

struct BatchOptions {
  // Total degree of parallelism (including the calling thread). 0 means
  // "pick from the hardware", clamped to [2, 8].
  unsigned threads = 0;
  core::AnalyzerOptions analyzer;
};

class BatchAnalyzer {
 public:
  explicit BatchAnalyzer(BatchOptions options = {});

  // Analyzes all inputs concurrently; never throws for bad input programs.
  BatchReport run(const std::vector<ProgramInput>& inputs) const;

  // Thread count the analyzer will actually use (after clamping).
  unsigned threads() const { return threads_; }

  // The whole benchmark corpus (corpus::all_entries()) as batch inputs.
  static std::vector<ProgramInput> corpus_inputs();

  // Serial aggregation in input order; exposed for tests.
  static BatchStats aggregate(const std::vector<ProgramReport>& programs);

 private:
  BatchOptions options_;
  unsigned threads_;
};

// The stable property key for a verdict reason ("monotonic non-decreasing
// bounds" -> "monotonic").
std::string property_key(const std::string& reason);

}  // namespace sspar::driver
