// Concurrent batch-analysis driver: runs the staged pipeline
// (pipeline::Session — parse -> analyze -> parallelize -> annotate -> emit)
// over many programs on a rt::ThreadPool and aggregates per-loop verdicts
// into corpus-wide statistics — the paper's Fig. 1 survey numbers as a
// programmatic API.
//
// Results are deterministic: reports come back in input order and every
// aggregate is computed serially from them, so a 1-thread and an 8-thread run
// produce identical output. A malformed program never aborts the batch; it
// yields per-program diagnostics and counts toward `stats.failed`.
//
// Callers that want results as they finish (progress bars, streaming JSON)
// can pass a per-report callback to run(); see BatchAnalyzer::run below.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/analyzer.h"
#include "ipa/cross_cache.h"
#include "ipa/summary.h"
#include "pipeline/assumptions.h"
#include "pipeline/session.h"
#include "support/diagnostics.h"
#include "transform/omp_emitter.h"

namespace sspar::driver {

// One program to analyze. `assumptions` declares lower bounds for global
// symbols (problem sizes known to be positive), as in transform::translate_source.
struct ProgramInput {
  std::string name;
  std::string source;
  pipeline::Assumptions assumptions;
};

// Pipeline output for one program. `result.parsed` owns the AST that
// `result.verdicts` point into, so downstream consumers (e.g. the dynamic
// dependence oracle in the differential tests) can keep interrogating loops.
struct ProgramReport {
  std::string name;
  bool ok = false;
  std::string error;  // frontend diagnostics or exception text when !ok
  // Structured diagnostics (stable code + location) live in `result.diags`.
  transform::TranslateResult result;
  // Per-stage wall-clock cost of this program's pipeline run.
  pipeline::SessionStats stages;
  // Interprocedural summary-cache counters of this program's session
  // (computed/hits/context_computed/applications plus this session's
  // cross-program shared_hits/shared_misses; all zero for single-function
  // programs). The shared hit/miss split can depend on scheduling with
  // threads > 1 — everything else is deterministic.
  ipa::SummaryDB::Stats summary_cache;

  // Per-program counts over result.verdicts (all zero when !ok).
  int loops = 0;
  int subscripted = 0;
  int parallel = 0;
  int parallel_subscripted = 0;
  // Coverage classification of every loop: statically parallel, hybrid
  // (dual-version with a runtime inspector check), or serial. The three
  // counters partition `loops`.
  int static_parallel = 0;
  int hybrid_parallel = 0;
  int serial = 0;
};

// Corpus-wide aggregates (the Fig. 1 survey as numbers).
struct BatchStats {
  int programs = 0;
  int failed = 0;
  int loops = 0;
  int subscripted = 0;
  int parallel = 0;
  int parallel_subscripted = 0;
  int annotated = 0;
  // Coverage partition of `loops` across the whole corpus: statically
  // parallel / hybrid inspector–executor dual-version / serial. Deterministic
  // at any thread count, like every other aggregate.
  int static_parallel = 0;
  int hybrid_parallel = 0;
  int serial = 0;
  // Programs containing >= 1 parallel loop with a subscripted subscript.
  int programs_with_pattern = 0;
  // Interprocedural summary-cache totals across all program sessions.
  int summaries_computed = 0;
  int summary_cache_hits = 0;
  int summary_applications = 0;
  // Context-sensitive re-summaries (entry-fact fingerprint != 0).
  int summary_context_computed = 0;
  // Cross-program shared-cache totals. Both are deterministic for a fixed
  // input set at ANY thread count: each session performs a fixed number of
  // shared lookups, and the set of unique content keys does not depend on
  // scheduling (only the hit/miss split does — that split lives in
  // BatchReport::shared_cache and per-program summary_cache, outside this
  // equality).
  int cross_summary_requests = 0;  // shared lookups across all sessions
  int cross_summary_entries = 0;   // unique content keys cached at end of run
  // SCC-member (recursive-function) summaries materialized across all
  // sessions — covered by the store since SCCs gained combined content keys.
  int summary_scc = 0;
  // Persistent-store (store::SummaryStore) counters. All deterministic for a
  // fixed input set AND store state: a preloaded key is present before any
  // session runs, so scheduling cannot flip its lookups between hit and
  // miss. store_loaded/evicted/flushed are filled by the store orchestrator
  // (CLI / server) via apply_store_stats; hits/misses aggregate from the
  // per-session SummaryDB counters.
  int store_loaded = 0;   // records read from disk at open
  int store_hits = 0;     // shared lookups served by a preloaded entry
  int store_misses = 0;   // shared lookups the store could not serve
  int store_evicted = 0;  // records dropped by the size cap at flush
  int store_flushed = 0;  // records written by the last flush
  // Resilience counters (JSON `stats.resilience`). Per-RUN values, so they
  // are deterministic and inside operator==: a batch run never sheds or
  // times out its own requests (always 0 here — the server's cumulative
  // shed/timed_out/recovered totals live in the `stats` method response,
  // outside report equality), and journal_replays is fixed by the store
  // state the run opened with.
  int shed = 0;             // requests refused by the connection cap
  int timed_out = 0;        // requests past their deadline or read timeout
  int recovered = 0;        // analyze exceptions turned into error responses
  int journal_replays = 0;  // WAL records replayed when the store opened
  // Enabling-property histogram over parallel subscripted-subscript loops,
  // keyed by core::property_name(verdict.property).
  std::map<std::string, int> property_counts;

  bool operator==(const BatchStats& other) const;
};

struct BatchReport {
  std::vector<ProgramReport> programs;  // in input order
  BatchStats stats;
  // Raw counters of the run's cross-program summary cache (all zero when
  // sharing is disabled). lookups/entries are deterministic; the hit/miss
  // split can vary with scheduling when sessions race on one key — never the
  // verdicts, which are identical either way.
  ipa::CrossProgramCache::Stats shared_cache;
};

struct BatchOptions {
  // Total degree of parallelism, including the calling thread. The contract:
  //   0  -> std::thread::hardware_concurrency(), i.e. one lane per logical
  //         core; when the hardware cannot be queried (the standard allows
  //         hardware_concurrency() == 0) the analyzer falls back to 2 so the
  //         concurrent path is still exercised;
  //   1  -> run serially on the calling thread (no pool, no extra threads);
  //   N  -> a pool with N-1 workers plus the calling thread (no clamping).
  // Verdicts and aggregates are deterministic for every setting.
  unsigned threads = 0;
  core::AnalyzerOptions analyzer;
  // Share one content-addressed summary cache across all program sessions
  // (ipa::CrossProgramCache): corpus entries containing byte-identical
  // helper functions reuse each other's summaries instead of re-deriving
  // them. Verdicts are identical with or without sharing.
  bool shared_summaries = true;
  // External cache to share across RUNS (not just across the programs of one
  // run). When non-null, sessions share this cache instead of a fresh
  // per-run one; entries preloaded into it from a store::SummaryStore count
  // as store hits. Ignored when shared_summaries is false. The caller keeps
  // ownership and must keep it alive for the duration of run(). Appended
  // after the original members so aggregate initialization like
  // `BatchOptions{1, {}}` keeps meaning what it always did.
  ipa::CrossProgramCache* share_with = nullptr;
};

class BatchAnalyzer {
 public:
  // Invoked once per finished program, in COMPLETION order (not input
  // order — aggregation stays input-ordered and deterministic regardless).
  // Calls are serialized by the analyzer; the reference is only valid for
  // the duration of the call with threads > 1.
  using ReportCallback = std::function<void(const ProgramReport&)>;

  explicit BatchAnalyzer(BatchOptions options = {});

  // Analyzes all inputs concurrently; never throws for bad input programs.
  // `on_report`, if given, streams each report as it completes.
  BatchReport run(const std::vector<ProgramInput>& inputs,
                  const ReportCallback& on_report = nullptr) const;

  // Thread count the analyzer will actually use (after clamping).
  unsigned threads() const { return threads_; }

  // The whole benchmark corpus (corpus::all_entries()) as batch inputs.
  static std::vector<ProgramInput> corpus_inputs();

  // Serial aggregation in input order; exposed for tests.
  static BatchStats aggregate(const std::vector<ProgramReport>& programs);

 private:
  BatchOptions options_;
  unsigned threads_;
};

// Histogram key for a parallel verdict: core::property_name(property), with
// the legacy string-prefix fallback for verdicts that predate the enum.
std::string property_key(const core::LoopVerdict& verdict);
// Legacy string-prefix form ("monotonic non-decreasing bounds" ->
// "monotonic"); kept for callers that only have a reason string.
std::string property_key(const std::string& reason);

}  // namespace sspar::driver
