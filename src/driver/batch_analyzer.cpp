#include "driver/batch_analyzer.h"

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>

#include "corpus/analysis.h"
#include "corpus/corpus.h"
#include "runtime/thread_pool.h"

namespace sspar::driver {

namespace {

unsigned clamp_threads(unsigned requested) {
  if (requested == 0) {
    // 0 means "use the hardware": one lane per logical core. The standard
    // allows hardware_concurrency() to return 0 (unknown); fall back to 2 so
    // the concurrent path is still exercised (verdicts are deterministic
    // either way). See BatchOptions::threads for the full contract.
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 2u : hw;
  }
  return requested;
}

ProgramReport analyze_one(const ProgramInput& input, const core::AnalyzerOptions& options,
                          ipa::CrossProgramCache* shared) {
  ProgramReport report;
  report.name = input.name;
  try {
    pipeline::Session session(input.source, input.assumptions);
    if (shared) session.share_summaries(shared);
    if (session.parse()) {
      session.analyze(options);
      if (const auto* verdicts = session.parallelize()) report.result.verdicts = *verdicts;
      report.result.parallelized = session.annotate();
      report.result.output = session.emit().output;
      report.result.ok = true;
    }
    report.result.diags = session.diagnostics().diagnostics();
    // Canonical (line, column, code) order + dedup: diagnostics compare
    // byte-identical no matter what order the analysis visited functions in
    // (batch shards, incremental dirty cones). The joined string form follows
    // the same order.
    support::canonicalize_diagnostics(report.result.diags);
    report.result.diagnostics.clear();
    for (const support::Diagnostic& d : report.result.diags) {
      report.result.diagnostics += d.to_string();
      report.result.diagnostics += '\n';
    }
    report.summary_cache = session.summaries().stats();
    report.result.parsed = session.take_parse();
    report.stages = session.stats();
  } catch (const std::exception& e) {
    report.error = e.what();
    return report;
  }
  if (!report.result.ok) {
    report.error = report.result.diagnostics.empty() ? "frontend failed"
                                                     : report.result.diagnostics;
    return report;
  }
  for (const auto& v : report.result.verdicts) {
    ++report.loops;
    if (v.uses_subscripted_subscripts) ++report.subscripted;
    if (v.parallel) ++report.parallel;
    if (v.parallel && v.uses_subscripted_subscripts) ++report.parallel_subscripted;
    if (v.parallel) {
      ++report.static_parallel;
    } else if (v.hybrid) {
      ++report.hybrid_parallel;
    } else {
      ++report.serial;
    }
  }
  report.ok = true;
  return report;
}

}  // namespace

bool BatchStats::operator==(const BatchStats& other) const {
  return programs == other.programs && failed == other.failed && loops == other.loops &&
         subscripted == other.subscripted && parallel == other.parallel &&
         parallel_subscripted == other.parallel_subscripted && annotated == other.annotated &&
         static_parallel == other.static_parallel &&
         hybrid_parallel == other.hybrid_parallel && serial == other.serial &&
         programs_with_pattern == other.programs_with_pattern &&
         summaries_computed == other.summaries_computed &&
         summary_cache_hits == other.summary_cache_hits &&
         summary_applications == other.summary_applications &&
         summary_context_computed == other.summary_context_computed &&
         cross_summary_requests == other.cross_summary_requests &&
         cross_summary_entries == other.cross_summary_entries &&
         summary_scc == other.summary_scc && store_loaded == other.store_loaded &&
         store_hits == other.store_hits && store_misses == other.store_misses &&
         store_evicted == other.store_evicted && store_flushed == other.store_flushed &&
         shed == other.shed && timed_out == other.timed_out &&
         recovered == other.recovered && journal_replays == other.journal_replays &&
         property_counts == other.property_counts;
}

std::string property_key(const core::LoopVerdict& verdict) {
  if (verdict.property != core::EnablingProperty::None) {
    return core::property_name(verdict.property);
  }
  return property_key(verdict.reason);
}

std::string property_key(const std::string& reason) {
  size_t end = reason.find_first_of(" (:");
  return end == std::string::npos ? reason : reason.substr(0, end);
}

BatchAnalyzer::BatchAnalyzer(BatchOptions options)
    : options_(options), threads_(clamp_threads(options.threads)) {}

BatchReport BatchAnalyzer::run(const std::vector<ProgramInput>& inputs,
                               const ReportCallback& on_report) const {
  BatchReport report;
  report.programs.resize(inputs.size());
  // One content-addressed summary cache for the whole batch: sessions
  // rehydrate byte-identical helper summaries other entries already
  // computed. Thread-safe; verdicts are identical with or without it. A
  // caller-owned cache (options_.share_with) — typically warmed from a
  // store::SummaryStore — takes the place of the per-run one, carrying
  // summaries across runs.
  ipa::CrossProgramCache shared_cache;
  ipa::CrossProgramCache* shared = nullptr;
  if (options_.shared_summaries) {
    shared = options_.share_with ? options_.share_with : &shared_cache;
  }
  if (!inputs.empty()) {
    if (threads_ == 1) {
      // threads == 1 means "serial on the calling thread": no pool, and the
      // streaming callback fires in input order.
      for (size_t i = 0; i < inputs.size(); ++i) {
        report.programs[i] = analyze_one(inputs[i], options_.analyzer, shared);
        if (on_report) on_report(report.programs[i]);
      }
    } else {
      // Each index writes only its own slot, so the report vector needs no
      // locking and its order never depends on scheduling. Only the
      // streaming callback needs serialization.
      std::mutex callback_mutex;
      rt::ThreadPool pool(std::min<size_t>(threads_, inputs.size()));
      pool.parallel_for(0, static_cast<int64_t>(inputs.size()),
                        [&](int64_t begin, int64_t end) {
                          for (int64_t i = begin; i < end; ++i) {
                            ProgramReport& slot = report.programs[static_cast<size_t>(i)];
                            slot = analyze_one(inputs[static_cast<size_t>(i)],
                                               options_.analyzer, shared);
                            if (on_report) {
                              std::lock_guard<std::mutex> lock(callback_mutex);
                              on_report(slot);
                            }
                          }
                        });
    }
  }
  report.stats = aggregate(report.programs);
  if (shared) {
    report.shared_cache = shared->stats();
    // The set of unique content keys is scheduling-independent (every
    // requested-and-missed key gets inserted), so this stays deterministic.
    report.stats.cross_summary_entries = static_cast<int>(shared->size());
  }
  return report;
}

BatchStats BatchAnalyzer::aggregate(const std::vector<ProgramReport>& programs) {
  BatchStats stats;
  for (const ProgramReport& p : programs) {
    ++stats.programs;
    if (!p.ok) {
      ++stats.failed;
      continue;
    }
    stats.loops += p.loops;
    stats.subscripted += p.subscripted;
    stats.parallel += p.parallel;
    stats.parallel_subscripted += p.parallel_subscripted;
    stats.annotated += p.result.parallelized;
    stats.static_parallel += p.static_parallel;
    stats.hybrid_parallel += p.hybrid_parallel;
    stats.serial += p.serial;
    if (p.parallel_subscripted > 0) ++stats.programs_with_pattern;
    // Materialized (computed + rehydrated) rather than raw computes: whether
    // a racing session computed or rehydrated a summary depends on
    // scheduling, the number of summaries it entered into its DB does not.
    stats.summaries_computed += static_cast<int>(p.summary_cache.materialized());
    stats.summary_cache_hits += static_cast<int>(p.summary_cache.hits);
    stats.summary_applications += static_cast<int>(p.summary_cache.applications);
    stats.summary_context_computed += static_cast<int>(p.summary_cache.context_computed);
    stats.cross_summary_requests += static_cast<int>(p.summary_cache.shared_requests());
    stats.summary_scc += static_cast<int>(p.summary_cache.scc_summaries);
    // Hits on preloaded (disk-backed) entries are deterministic: the keys are
    // present before any session runs, so scheduling cannot flip them.
    stats.store_hits += static_cast<int>(p.summary_cache.store_hits);
    stats.store_misses += static_cast<int>(p.summary_cache.store_misses());
    for (const auto& v : p.result.verdicts) {
      if (v.parallel && v.uses_subscripted_subscripts) {
        ++stats.property_counts[property_key(v)];
      }
    }
  }
  return stats;
}

std::vector<ProgramInput> BatchAnalyzer::corpus_inputs() {
  std::vector<ProgramInput> inputs;
  for (const corpus::Entry& entry : corpus::all_entries()) {
    inputs.push_back(
        ProgramInput{entry.name, entry.source, corpus::analyzer_assumptions(entry)});
  }
  return inputs;
}

}  // namespace sspar::driver
