#include "frontend/lexer.h"

#include <cctype>
#include <unordered_map>

namespace sspar::ast {

namespace {
const std::unordered_map<std::string_view, TokenKind>& keywords() {
  static const std::unordered_map<std::string_view, TokenKind> map = {
      {"int", TokenKind::KwInt},         {"long", TokenKind::KwLong},
      {"float", TokenKind::KwFloat},     {"double", TokenKind::KwDouble},
      {"void", TokenKind::KwVoid},       {"for", TokenKind::KwFor},
      {"while", TokenKind::KwWhile},     {"if", TokenKind::KwIf},
      {"else", TokenKind::KwElse},       {"break", TokenKind::KwBreak},
      {"continue", TokenKind::KwContinue}, {"return", TokenKind::KwReturn},
  };
  return map;
}
}  // namespace

const char* token_kind_name(TokenKind kind) {
  switch (kind) {
    case TokenKind::End: return "end of input";
    case TokenKind::Identifier: return "identifier";
    case TokenKind::IntLiteral: return "integer literal";
    case TokenKind::FloatLiteral: return "float literal";
    case TokenKind::KwInt: return "'int'";
    case TokenKind::KwLong: return "'long'";
    case TokenKind::KwFloat: return "'float'";
    case TokenKind::KwDouble: return "'double'";
    case TokenKind::KwVoid: return "'void'";
    case TokenKind::KwFor: return "'for'";
    case TokenKind::KwWhile: return "'while'";
    case TokenKind::KwIf: return "'if'";
    case TokenKind::KwElse: return "'else'";
    case TokenKind::KwBreak: return "'break'";
    case TokenKind::KwContinue: return "'continue'";
    case TokenKind::KwReturn: return "'return'";
    case TokenKind::LParen: return "'('";
    case TokenKind::RParen: return "')'";
    case TokenKind::LBrace: return "'{'";
    case TokenKind::RBrace: return "'}'";
    case TokenKind::LBracket: return "'['";
    case TokenKind::RBracket: return "']'";
    case TokenKind::Semi: return "';'";
    case TokenKind::Comma: return "','";
    case TokenKind::Question: return "'?'";
    case TokenKind::Colon: return "':'";
    case TokenKind::Assign: return "'='";
    case TokenKind::PlusAssign: return "'+='";
    case TokenKind::MinusAssign: return "'-='";
    case TokenKind::StarAssign: return "'*='";
    case TokenKind::SlashAssign: return "'/='";
    case TokenKind::PercentAssign: return "'%='";
    case TokenKind::PlusPlus: return "'++'";
    case TokenKind::MinusMinus: return "'--'";
    case TokenKind::Plus: return "'+'";
    case TokenKind::Minus: return "'-'";
    case TokenKind::Star: return "'*'";
    case TokenKind::Slash: return "'/'";
    case TokenKind::Percent: return "'%'";
    case TokenKind::Lt: return "'<'";
    case TokenKind::Le: return "'<='";
    case TokenKind::Gt: return "'>'";
    case TokenKind::Ge: return "'>='";
    case TokenKind::EqEq: return "'=='";
    case TokenKind::NotEq: return "'!='";
    case TokenKind::AmpAmp: return "'&&'";
    case TokenKind::PipePipe: return "'||'";
    case TokenKind::Not: return "'!'";
  }
  return "?";
}

Lexer::Lexer(std::string_view source, support::DiagnosticEngine& diags)
    : source_(source), diags_(diags) {}

char Lexer::peek(size_t ahead) const {
  size_t p = pos_ + ahead;
  return p < source_.size() ? source_[p] : '\0';
}

char Lexer::advance() {
  char c = source_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

bool Lexer::match(char expected) {
  if (peek() != expected) return false;
  advance();
  return true;
}

support::SourceLocation Lexer::here() const {
  return {line_, column_, static_cast<uint32_t>(pos_)};
}

void Lexer::skip_trivia() {
  while (pos_ < source_.size()) {
    char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
    } else if (c == '/' && peek(1) == '/') {
      while (pos_ < source_.size() && peek() != '\n') advance();
    } else if (c == '/' && peek(1) == '*') {
      advance();
      advance();
      while (pos_ < source_.size() && !(peek() == '*' && peek(1) == '/')) advance();
      if (pos_ < source_.size()) {
        advance();
        advance();
      } else {
        diags_.error(support::DiagCode::LexUnterminatedComment, here(),
                     "unterminated block comment");
      }
    } else if (c == '#') {
      while (pos_ < source_.size() && peek() != '\n') advance();
    } else {
      break;
    }
  }
}

Token Lexer::lex_number() {
  Token tok;
  tok.location = here();
  // Scan the token as one span of the source instead of growing a string a
  // character at a time (lexing is on the interactive re-parse path).
  const size_t start = pos_;
  bool is_float = false;
  while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
  if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    is_float = true;
    advance();
    while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
  }
  if (peek() == 'e' || peek() == 'E') {
    size_t save = 1;
    if (peek(1) == '+' || peek(1) == '-') save = 2;
    if (std::isdigit(static_cast<unsigned char>(peek(save)))) {
      is_float = true;
      advance();  // e
      if (peek() == '+' || peek() == '-') advance();
      while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
    }
  }
  std::string digits(source_.substr(start, pos_ - start));
  if (is_float) {
    tok.kind = TokenKind::FloatLiteral;
    tok.float_value = std::stod(digits);
  } else {
    tok.kind = TokenKind::IntLiteral;
    tok.int_value = std::stoll(digits);
  }
  return tok;
}

Token Lexer::lex_identifier() {
  Token tok;
  tok.location = here();
  const size_t start = pos_;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_') {
    ++pos_;  // identifiers cannot span lines; column is fixed up below
  }
  column_ += static_cast<uint32_t>(pos_ - start);
  std::string_view text = source_.substr(start, pos_ - start);
  auto it = keywords().find(text);
  if (it != keywords().end()) {
    tok.kind = it->second;
  } else {
    tok.kind = TokenKind::Identifier;
    tok.text = std::string(text);
  }
  return tok;
}

Token Lexer::next() {
  skip_trivia();
  Token tok;
  tok.location = here();
  if (pos_ >= source_.size()) {
    tok.kind = TokenKind::End;
    return tok;
  }
  char c = peek();
  if (std::isdigit(static_cast<unsigned char>(c))) return lex_number();
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') return lex_identifier();
  advance();
  switch (c) {
    case '(': tok.kind = TokenKind::LParen; break;
    case ')': tok.kind = TokenKind::RParen; break;
    case '{': tok.kind = TokenKind::LBrace; break;
    case '}': tok.kind = TokenKind::RBrace; break;
    case '[': tok.kind = TokenKind::LBracket; break;
    case ']': tok.kind = TokenKind::RBracket; break;
    case ';': tok.kind = TokenKind::Semi; break;
    case ',': tok.kind = TokenKind::Comma; break;
    case '?': tok.kind = TokenKind::Question; break;
    case ':': tok.kind = TokenKind::Colon; break;
    case '+':
      tok.kind = match('+') ? TokenKind::PlusPlus
               : match('=') ? TokenKind::PlusAssign
                            : TokenKind::Plus;
      break;
    case '-':
      tok.kind = match('-') ? TokenKind::MinusMinus
               : match('=') ? TokenKind::MinusAssign
                            : TokenKind::Minus;
      break;
    case '*': tok.kind = match('=') ? TokenKind::StarAssign : TokenKind::Star; break;
    case '/': tok.kind = match('=') ? TokenKind::SlashAssign : TokenKind::Slash; break;
    case '%': tok.kind = match('=') ? TokenKind::PercentAssign : TokenKind::Percent; break;
    case '<': tok.kind = match('=') ? TokenKind::Le : TokenKind::Lt; break;
    case '>': tok.kind = match('=') ? TokenKind::Ge : TokenKind::Gt; break;
    case '=': tok.kind = match('=') ? TokenKind::EqEq : TokenKind::Assign; break;
    case '!': tok.kind = match('=') ? TokenKind::NotEq : TokenKind::Not; break;
    case '&':
      if (match('&')) {
        tok.kind = TokenKind::AmpAmp;
      } else {
        diags_.error(support::DiagCode::LexUnexpectedChar, tok.location,
                     "unexpected character '&'");
        return next();
      }
      break;
    case '|':
      if (match('|')) {
        tok.kind = TokenKind::PipePipe;
      } else {
        diags_.error(support::DiagCode::LexUnexpectedChar, tok.location,
                     "unexpected character '|'");
        return next();
      }
      break;
    default:
      diags_.error(support::DiagCode::LexUnexpectedChar, tok.location,
                   std::string("unexpected character '") + c + "'");
      return next();
  }
  return tok;
}

std::vector<Token> Lexer::tokenize(std::string_view source,
                                   support::DiagnosticEngine& diags) {
  Lexer lexer(source, diags);
  std::vector<Token> tokens;
  // ~5 bytes per token is typical for this grammar; one up-front reservation
  // avoids log(n) grow-and-move cycles of 64-byte Tokens.
  tokens.reserve(source.size() / 5 + 16);
  for (;;) {
    tokens.push_back(lexer.next());
    if (tokens.back().kind == TokenKind::End) break;
  }
  return tokens;
}

}  // namespace sspar::ast
