// Hand-written lexer for the mini-C subset.
//
// Handles //- and /* */-comments; `#`-lines (preprocessor directives such as
// #pragma) are skipped to end of line — the corpus sources are pre-expanded
// and parallelization pragmas are *produced* by the transform module, never
// consumed.
#pragma once

#include <string_view>
#include <vector>

#include "frontend/token.h"
#include "support/diagnostics.h"

namespace sspar::ast {

class Lexer {
 public:
  Lexer(std::string_view source, support::DiagnosticEngine& diags);

  Token next();

  // Lexes the entire input (including the trailing End token).
  static std::vector<Token> tokenize(std::string_view source,
                                     support::DiagnosticEngine& diags);

 private:
  char peek(size_t ahead = 0) const;
  char advance();
  bool match(char expected);
  void skip_trivia();
  support::SourceLocation here() const;

  Token lex_number();
  Token lex_identifier();

  std::string_view source_;
  support::DiagnosticEngine& diags_;
  size_t pos_ = 0;
  uint32_t line_ = 1;
  uint32_t column_ = 1;
};

}  // namespace sspar::ast
