// Source emission (the "source-to-source" back end).
//
// Prints the AST back to compilable C. For-loop annotations (filled in by the
// transform module, e.g. "#pragma omp parallel for private(j)") are emitted
// verbatim on their own lines directly above the loop.
#pragma once

#include <string>

#include "frontend/ast.h"

namespace sspar::ast {

std::string print_program(const Program& program);
std::string print_stmt(const Stmt& stmt, int indent = 0);
std::string print_expr(const Expr& expr);

}  // namespace sspar::ast
