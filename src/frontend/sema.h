// Semantic analysis: scope resolution, symbol binding, light type checks.
//
// Binds every VarRef to its VarDecl, assigns each declaration a unique
// sym::SymbolId (shared with the symbolic/analysis layer), and numbers For
// loops in pre-order (For::loop_id) so analysis results can be keyed stably.
#pragma once

#include <memory>

#include "frontend/ast.h"
#include "support/diagnostics.h"
#include "symbolic/symbol.h"

namespace sspar::ast {

struct ParseResult {
  std::unique_ptr<Program> program;
  std::shared_ptr<sym::SymbolTable> symbols;
  bool ok = false;
};

// Runs sema over a parsed program in place.
bool resolve(Program& program, sym::SymbolTable& symbols, support::DiagnosticEngine& diags);

// Convenience: lex + parse + resolve.
ParseResult parse_and_resolve(std::string_view source, support::DiagnosticEngine& diags);

}  // namespace sspar::ast
