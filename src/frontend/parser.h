// Recursive-descent parser for the mini-C subset.
#pragma once

#include <memory>
#include <string_view>

#include "frontend/ast.h"
#include "frontend/lexer.h"
#include "support/diagnostics.h"

namespace sspar::ast {

class Parser {
 public:
  Parser(std::string_view source, support::DiagnosticEngine& diags);

  // Parses a whole translation unit. Returns a program even on error (with
  // diagnostics reported); callers should check diags.has_errors().
  std::unique_ptr<Program> parse_program();

 private:
  const Token& peek(size_t ahead = 0) const;
  const Token& current() const { return peek(0); }
  Token consume();
  bool check(TokenKind kind) const { return current().kind == kind; }
  bool match(TokenKind kind);
  Token expect(TokenKind kind, const char* context);
  void synchronize();

  bool at_type_keyword() const;
  TypeKind parse_type();

  void parse_top_level(Program& program);
  std::unique_ptr<VarDecl> parse_declarator(TypeKind base, bool is_param);
  std::unique_ptr<FuncDecl> parse_function_rest(TypeKind ret, Token name_tok);

  StmtPtr parse_stmt();
  StmtPtr parse_compound();
  StmtPtr parse_if();
  StmtPtr parse_for();
  StmtPtr parse_while();
  StmtPtr parse_decl_stmt();

  ExprPtr parse_expr() { return parse_assignment(); }
  ExprPtr parse_assignment();
  ExprPtr parse_conditional();
  ExprPtr parse_binary(int min_precedence);
  ExprPtr parse_unary();
  ExprPtr parse_postfix();
  ExprPtr parse_primary();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  support::DiagnosticEngine& diags_;
};

}  // namespace sspar::ast
