#include "frontend/ast.h"

#include <functional>

namespace sspar::ast {

const char* type_name(TypeKind t) {
  switch (t) {
    case TypeKind::Void:
      return "void";
    case TypeKind::Int:
      return "int";
    case TypeKind::Double:
      return "double";
  }
  return "?";
}

const char* binary_op_spelling(BinaryOp op) {
  switch (op) {
    case BinaryOp::Add: return "+";
    case BinaryOp::Sub: return "-";
    case BinaryOp::Mul: return "*";
    case BinaryOp::Div: return "/";
    case BinaryOp::Rem: return "%";
    case BinaryOp::Lt: return "<";
    case BinaryOp::Le: return "<=";
    case BinaryOp::Gt: return ">";
    case BinaryOp::Ge: return ">=";
    case BinaryOp::Eq: return "==";
    case BinaryOp::Ne: return "!=";
    case BinaryOp::LAnd: return "&&";
    case BinaryOp::LOr: return "||";
  }
  return "?";
}

const char* assign_op_spelling(AssignOp op) {
  switch (op) {
    case AssignOp::Assign: return "=";
    case AssignOp::Add: return "+=";
    case AssignOp::Sub: return "-=";
    case AssignOp::Mul: return "*=";
    case AssignOp::Div: return "/=";
    case AssignOp::Rem: return "%=";
  }
  return "?";
}

const VarRef* ArrayRef::root() const {
  const Expr* e = base.get();
  while (const auto* ar = e->as<ArrayRef>()) e = ar->base.get();
  return e->as<VarRef>();
}

std::vector<const Expr*> ArrayRef::subscripts() const {
  std::vector<const Expr*> subs;
  const ArrayRef* cur = this;
  for (;;) {
    subs.push_back(cur->index.get());
    const auto* next = cur->base->as<ArrayRef>();
    if (!next) break;
    cur = next;
  }
  return {subs.rbegin(), subs.rend()};
}

const FuncDecl* Program::find_function(std::string_view name) const {
  for (const auto& f : functions) {
    if (f->name == name) return f.get();
  }
  return nullptr;
}

FuncDecl* Program::find_function(std::string_view name) {
  for (auto& f : functions) {
    if (f->name == name) return f.get();
  }
  return nullptr;
}

const VarDecl* Program::find_global(std::string_view name) const {
  for (const auto& g : globals) {
    if (g->name == name) return g.get();
  }
  return nullptr;
}

namespace {
template <typename StmtT, typename Fn>
void walk_stmts_impl(StmtT* root, const Fn& fn) {
  if (!root) return;
  if (!fn(root)) return;
  switch (root->kind) {
    case StmtNodeKind::Compound: {
      auto* c = root->template as<Compound>();
      for (auto& s : c->body) walk_stmts_impl(s.get(), fn);
      break;
    }
    case StmtNodeKind::If: {
      auto* s = root->template as<If>();
      walk_stmts_impl(s->then_branch.get(), fn);
      walk_stmts_impl(s->else_branch.get(), fn);
      break;
    }
    case StmtNodeKind::For: {
      auto* s = root->template as<For>();
      walk_stmts_impl(s->init.get(), fn);
      walk_stmts_impl(s->body.get(), fn);
      break;
    }
    case StmtNodeKind::While: {
      auto* s = root->template as<While>();
      walk_stmts_impl(s->body.get(), fn);
      break;
    }
    default:
      break;
  }
}
}  // namespace

void walk_stmts(Stmt* root, const std::function<bool(Stmt*)>& fn) {
  walk_stmts_impl(root, fn);
}
void walk_stmts(const Stmt* root, const std::function<bool(const Stmt*)>& fn) {
  walk_stmts_impl(root, fn);
}

void walk_subexprs(const Expr* root, const std::function<void(const Expr*)>& fn) {
  if (!root) return;
  fn(root);
  switch (root->kind) {
    case ExprNodeKind::ArrayRef: {
      const auto* e = root->as<ArrayRef>();
      walk_subexprs(e->base.get(), fn);
      walk_subexprs(e->index.get(), fn);
      break;
    }
    case ExprNodeKind::Binary: {
      const auto* e = root->as<Binary>();
      walk_subexprs(e->lhs.get(), fn);
      walk_subexprs(e->rhs.get(), fn);
      break;
    }
    case ExprNodeKind::Unary:
      walk_subexprs(root->as<Unary>()->operand.get(), fn);
      break;
    case ExprNodeKind::Assign: {
      const auto* e = root->as<Assign>();
      walk_subexprs(e->target.get(), fn);
      walk_subexprs(e->value.get(), fn);
      break;
    }
    case ExprNodeKind::IncDec:
      walk_subexprs(root->as<IncDec>()->target.get(), fn);
      break;
    case ExprNodeKind::Conditional: {
      const auto* e = root->as<Conditional>();
      walk_subexprs(e->cond.get(), fn);
      walk_subexprs(e->then_expr.get(), fn);
      walk_subexprs(e->else_expr.get(), fn);
      break;
    }
    case ExprNodeKind::Call:
      for (const auto& a : root->as<Call>()->args) walk_subexprs(a.get(), fn);
      break;
    default:
      break;
  }
}

void walk_exprs(const Stmt* root, const std::function<void(const Expr*)>& fn) {
  walk_stmts(root, [&fn](const Stmt* s) {
    switch (s->kind) {
      case StmtNodeKind::ExprStmt:
        walk_subexprs(s->as<ExprStmt>()->expr.get(), fn);
        break;
      case StmtNodeKind::DeclStmt:
        for (const auto& d : s->as<DeclStmt>()->decls) {
          if (d->init) walk_subexprs(d->init.get(), fn);
        }
        break;
      case StmtNodeKind::If:
        walk_subexprs(s->as<If>()->cond.get(), fn);
        break;
      case StmtNodeKind::For: {
        const auto* f = s->as<For>();
        walk_subexprs(f->cond.get(), fn);
        walk_subexprs(f->step.get(), fn);
        break;
      }
      case StmtNodeKind::While:
        walk_subexprs(s->as<While>()->cond.get(), fn);
        break;
      case StmtNodeKind::Return:
        walk_subexprs(s->as<Return>()->value.get(), fn);
        break;
      default:
        break;
    }
    return true;
  });
}

std::vector<const For*> collect_loops(const Stmt* root) {
  std::vector<const For*> loops;
  walk_stmts(root, [&loops](const Stmt* s) {
    if (const auto* f = s->as<For>()) loops.push_back(f);
    return true;
  });
  return loops;
}

std::vector<For*> collect_loops(Stmt* root) {
  std::vector<For*> loops;
  walk_stmts(root, [&loops](Stmt* s) {
    if (auto* f = s->as<For>()) loops.push_back(f);
    return true;
  });
  return loops;
}

}  // namespace sspar::ast
