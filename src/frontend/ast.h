// AST for the mini-C subset.
//
// The subset covers everything that appears in the paper's figures and in the
// NPB / SuiteSparse kernels of the corpus: int/long/float/double scalars and
// (multi-dimensional) arrays, functions, for/while/if control flow, the full
// C expression grammar over those types (assignment, compound assignment,
// pre/post increment, ternary, logical, relational, arithmetic), and calls.
// No pointers, structs, casts, or switch — the corpus does not need them.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "support/source_location.h"
#include "symbolic/symbol.h"

namespace sspar::ast {

class Expr;
class Stmt;
class VarDecl;
class FuncDecl;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

enum class TypeKind : uint8_t { Void, Int, Double };
const char* type_name(TypeKind t);

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprNodeKind : uint8_t {
  IntLit,
  FloatLit,
  VarRef,
  ArrayRef,
  Binary,
  Unary,
  Assign,
  IncDec,
  Conditional,
  Call,
};

enum class BinaryOp : uint8_t { Add, Sub, Mul, Div, Rem, Lt, Le, Gt, Ge, Eq, Ne, LAnd, LOr };
enum class UnaryOp : uint8_t { Neg, Not };
enum class AssignOp : uint8_t { Assign, Add, Sub, Mul, Div, Rem };
enum class IncDecOp : uint8_t { PreInc, PreDec, PostInc, PostDec };

const char* binary_op_spelling(BinaryOp op);
const char* assign_op_spelling(AssignOp op);

class Expr {
 public:
  const ExprNodeKind kind;
  support::SourceLocation location;

  virtual ~Expr() = default;

  template <typename T>
  const T* as() const {
    return T::kClassKind == kind ? static_cast<const T*>(this) : nullptr;
  }
  template <typename T>
  T* as() {
    return T::kClassKind == kind ? static_cast<T*>(this) : nullptr;
  }

 protected:
  explicit Expr(ExprNodeKind k) : kind(k) {}
};

class IntLit final : public Expr {
 public:
  static constexpr ExprNodeKind kClassKind = ExprNodeKind::IntLit;
  int64_t value;
  explicit IntLit(int64_t v) : Expr(kClassKind), value(v) {}
};

class FloatLit final : public Expr {
 public:
  static constexpr ExprNodeKind kClassKind = ExprNodeKind::FloatLit;
  double value;
  explicit FloatLit(double v) : Expr(kClassKind), value(v) {}
};

class VarRef final : public Expr {
 public:
  static constexpr ExprNodeKind kClassKind = ExprNodeKind::VarRef;
  std::string name;
  const VarDecl* decl = nullptr;  // bound by sema
  explicit VarRef(std::string n) : Expr(kClassKind), name(std::move(n)) {}
};

// One subscript level; `a[i][j]` is ArrayRef(ArrayRef(VarRef(a), i), j).
class ArrayRef final : public Expr {
 public:
  static constexpr ExprNodeKind kClassKind = ExprNodeKind::ArrayRef;
  ExprPtr base;
  ExprPtr index;
  ArrayRef(ExprPtr b, ExprPtr i) : Expr(kClassKind), base(std::move(b)), index(std::move(i)) {}

  // The VarRef at the root of the subscript chain (nullptr if malformed).
  const VarRef* root() const;
  // Subscripts from outermost dimension to innermost.
  std::vector<const Expr*> subscripts() const;
};

class Binary final : public Expr {
 public:
  static constexpr ExprNodeKind kClassKind = ExprNodeKind::Binary;
  BinaryOp op;
  ExprPtr lhs, rhs;
  Binary(BinaryOp o, ExprPtr l, ExprPtr r)
      : Expr(kClassKind), op(o), lhs(std::move(l)), rhs(std::move(r)) {}
};

class Unary final : public Expr {
 public:
  static constexpr ExprNodeKind kClassKind = ExprNodeKind::Unary;
  UnaryOp op;
  ExprPtr operand;
  Unary(UnaryOp o, ExprPtr e) : Expr(kClassKind), op(o), operand(std::move(e)) {}
};

class Assign final : public Expr {
 public:
  static constexpr ExprNodeKind kClassKind = ExprNodeKind::Assign;
  AssignOp op;
  ExprPtr target;  // VarRef or ArrayRef
  ExprPtr value;
  Assign(AssignOp o, ExprPtr t, ExprPtr v)
      : Expr(kClassKind), op(o), target(std::move(t)), value(std::move(v)) {}
};

class IncDec final : public Expr {
 public:
  static constexpr ExprNodeKind kClassKind = ExprNodeKind::IncDec;
  IncDecOp op;
  ExprPtr target;
  IncDec(IncDecOp o, ExprPtr t) : Expr(kClassKind), op(o), target(std::move(t)) {}

  bool is_increment() const { return op == IncDecOp::PreInc || op == IncDecOp::PostInc; }
  bool is_post() const { return op == IncDecOp::PostInc || op == IncDecOp::PostDec; }
};

class Conditional final : public Expr {
 public:
  static constexpr ExprNodeKind kClassKind = ExprNodeKind::Conditional;
  ExprPtr cond, then_expr, else_expr;
  Conditional(ExprPtr c, ExprPtr t, ExprPtr e)
      : Expr(kClassKind), cond(std::move(c)), then_expr(std::move(t)), else_expr(std::move(e)) {}
};

class Call final : public Expr {
 public:
  static constexpr ExprNodeKind kClassKind = ExprNodeKind::Call;
  std::string callee;
  std::vector<ExprPtr> args;
  // Bound by sema against the program's function list; stays null for calls
  // to names with no definition in the translation unit (the analysis then
  // treats the call as opaque).
  const FuncDecl* decl = nullptr;
  Call(std::string c, std::vector<ExprPtr> a)
      : Expr(kClassKind), callee(std::move(c)), args(std::move(a)) {}
};

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

class VarDecl {
 public:
  std::string name;
  TypeKind elem_type = TypeKind::Int;
  std::vector<ExprPtr> dims;  // empty = scalar; entries may be null for `int a[]`
  ExprPtr init;               // optional
  bool is_param = false;
  support::SourceLocation location;
  // Symbol assigned during sema; shared with the symbolic/analysis layer.
  sym::SymbolId symbol = sym::kInvalidSymbol;

  bool is_array() const { return !dims.empty(); }
  bool is_integer_scalar() const { return dims.empty() && elem_type == TypeKind::Int; }
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtNodeKind : uint8_t {
  ExprStmt,
  DeclStmt,
  Compound,
  If,
  For,
  While,
  Break,
  Continue,
  Return,
  Empty,
};

class Stmt {
 public:
  const StmtNodeKind kind;
  support::SourceLocation location;

  virtual ~Stmt() = default;

  template <typename T>
  const T* as() const {
    return T::kClassKind == kind ? static_cast<const T*>(this) : nullptr;
  }
  template <typename T>
  T* as() {
    return T::kClassKind == kind ? static_cast<T*>(this) : nullptr;
  }

 protected:
  explicit Stmt(StmtNodeKind k) : kind(k) {}
};

class ExprStmt final : public Stmt {
 public:
  static constexpr StmtNodeKind kClassKind = StmtNodeKind::ExprStmt;
  ExprPtr expr;
  explicit ExprStmt(ExprPtr e) : Stmt(kClassKind), expr(std::move(e)) {}
};

class DeclStmt final : public Stmt {
 public:
  static constexpr StmtNodeKind kClassKind = StmtNodeKind::DeclStmt;
  std::vector<std::unique_ptr<VarDecl>> decls;  // `int a = 0, b;`
  DeclStmt() : Stmt(kClassKind) {}
};

class Compound final : public Stmt {
 public:
  static constexpr StmtNodeKind kClassKind = StmtNodeKind::Compound;
  std::vector<StmtPtr> body;
  Compound() : Stmt(kClassKind) {}
};

class If final : public Stmt {
 public:
  static constexpr StmtNodeKind kClassKind = StmtNodeKind::If;
  ExprPtr cond;
  StmtPtr then_branch;
  StmtPtr else_branch;  // may be null
  If(ExprPtr c, StmtPtr t, StmtPtr e)
      : Stmt(kClassKind), cond(std::move(c)), then_branch(std::move(t)),
        else_branch(std::move(e)) {}
};

class For final : public Stmt {
 public:
  static constexpr StmtNodeKind kClassKind = StmtNodeKind::For;
  StmtPtr init;  // ExprStmt, DeclStmt, or Empty
  ExprPtr cond;  // may be null
  ExprPtr step;  // may be null
  StmtPtr body;
  // Filled by the transform layer; the printer emits these verbatim above the
  // loop (e.g. "#pragma omp parallel for private(j, j1)").
  std::vector<std::string> annotations;
  // Hybrid inspector–executor dispatch, filled by the transform layer: when
  // `hybrid_check` is non-empty the printer emits the loop twice inside
  //   if (<hybrid_check>) { <hybrid_pragma> <loop> } else { <loop> }
  // so the parallel version runs only when the runtime check holds.
  std::string hybrid_check;
  std::string hybrid_pragma;
  // Stable id assigned by sema (pre-order); used to key analysis results.
  int loop_id = -1;
  For(StmtPtr i, ExprPtr c, ExprPtr s, StmtPtr b)
      : Stmt(kClassKind), init(std::move(i)), cond(std::move(c)), step(std::move(s)),
        body(std::move(b)) {}
};

class While final : public Stmt {
 public:
  static constexpr StmtNodeKind kClassKind = StmtNodeKind::While;
  ExprPtr cond;
  StmtPtr body;
  While(ExprPtr c, StmtPtr b) : Stmt(kClassKind), cond(std::move(c)), body(std::move(b)) {}
};

class Break final : public Stmt {
 public:
  static constexpr StmtNodeKind kClassKind = StmtNodeKind::Break;
  Break() : Stmt(kClassKind) {}
};

class Continue final : public Stmt {
 public:
  static constexpr StmtNodeKind kClassKind = StmtNodeKind::Continue;
  Continue() : Stmt(kClassKind) {}
};

class Return final : public Stmt {
 public:
  static constexpr StmtNodeKind kClassKind = StmtNodeKind::Return;
  ExprPtr value;  // may be null
  explicit Return(ExprPtr v) : Stmt(kClassKind), value(std::move(v)) {}
};

class Empty final : public Stmt {
 public:
  static constexpr StmtNodeKind kClassKind = StmtNodeKind::Empty;
  Empty() : Stmt(kClassKind) {}
};

// ---------------------------------------------------------------------------
// Program
// ---------------------------------------------------------------------------

class FuncDecl {
 public:
  std::string name;
  TypeKind return_type = TypeKind::Void;
  std::vector<std::unique_ptr<VarDecl>> params;
  std::unique_ptr<Compound> body;
  support::SourceLocation location;
};

class Program {
 public:
  std::vector<std::unique_ptr<VarDecl>> globals;
  std::vector<std::unique_ptr<FuncDecl>> functions;

  const FuncDecl* find_function(std::string_view name) const;
  FuncDecl* find_function(std::string_view name);
  const VarDecl* find_global(std::string_view name) const;
};

// Pre-order traversal helpers. The callbacks may return false to prune the
// subtree (children are not visited).
void walk_stmts(Stmt* root, const std::function<bool(Stmt*)>& fn);
void walk_stmts(const Stmt* root, const std::function<bool(const Stmt*)>& fn);
void walk_exprs(const Stmt* root, const std::function<void(const Expr*)>& fn);
void walk_subexprs(const Expr* root, const std::function<void(const Expr*)>& fn);

// All For loops in pre-order.
std::vector<const For*> collect_loops(const Stmt* root);
std::vector<For*> collect_loops(Stmt* root);

}  // namespace sspar::ast
