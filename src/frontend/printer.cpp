#include "frontend/printer.h"

#include <cmath>

#include "support/text.h"

namespace sspar::ast {

namespace {

int binop_precedence(BinaryOp op) {
  switch (op) {
    case BinaryOp::LOr: return 1;
    case BinaryOp::LAnd: return 2;
    case BinaryOp::Eq:
    case BinaryOp::Ne: return 3;
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge: return 4;
    case BinaryOp::Add:
    case BinaryOp::Sub: return 5;
    case BinaryOp::Mul:
    case BinaryOp::Div:
    case BinaryOp::Rem: return 6;
  }
  return 0;
}

// Precedence of the whole expression for parenthesization decisions.
int expr_precedence(const Expr& e) {
  switch (e.kind) {
    case ExprNodeKind::Assign: return 0;
    case ExprNodeKind::Conditional: return 0;
    case ExprNodeKind::Binary: return binop_precedence(e.as<Binary>()->op);
    case ExprNodeKind::Unary: return 7;
    case ExprNodeKind::IncDec: return 8;
    default: return 9;  // primary
  }
}

void print_expr_impl(const Expr& e, std::string& out, int parent_precedence);

void print_child(const Expr& child, std::string& out, int parent_precedence) {
  bool parens = expr_precedence(child) < parent_precedence;
  if (parens) out += "(";
  print_expr_impl(child, out, 0);
  if (parens) out += ")";
}

void print_expr_impl(const Expr& e, std::string& out, int) {
  switch (e.kind) {
    case ExprNodeKind::IntLit:
      out += std::to_string(e.as<IntLit>()->value);
      break;
    case ExprNodeKind::FloatLit: {
      double v = e.as<FloatLit>()->value;
      std::string s = support::format("%g", v);
      // Ensure a decimal marker so the literal stays a double when re-parsed.
      if (s.find('.') == std::string::npos && s.find('e') == std::string::npos) s += ".0";
      out += s;
      break;
    }
    case ExprNodeKind::VarRef:
      out += e.as<VarRef>()->name;
      break;
    case ExprNodeKind::ArrayRef: {
      const auto* a = e.as<ArrayRef>();
      print_child(*a->base, out, 9);
      out += "[";
      print_expr_impl(*a->index, out, 0);
      out += "]";
      break;
    }
    case ExprNodeKind::Binary: {
      const auto* b = e.as<Binary>();
      int prec = binop_precedence(b->op);
      print_child(*b->lhs, out, prec);
      out += " ";
      out += binary_op_spelling(b->op);
      out += " ";
      print_child(*b->rhs, out, prec + 1);  // left-associative
      break;
    }
    case ExprNodeKind::Unary: {
      const auto* u = e.as<Unary>();
      out += u->op == UnaryOp::Neg ? "-" : "!";
      print_child(*u->operand, out, 7);
      break;
    }
    case ExprNodeKind::Assign: {
      const auto* a = e.as<Assign>();
      print_child(*a->target, out, 1);
      out += " ";
      out += assign_op_spelling(a->op);
      out += " ";
      print_child(*a->value, out, 0);
      break;
    }
    case ExprNodeKind::IncDec: {
      const auto* i = e.as<IncDec>();
      const char* tok = i->is_increment() ? "++" : "--";
      if (!i->is_post()) out += tok;
      print_child(*i->target, out, 8);
      if (i->is_post()) out += tok;
      break;
    }
    case ExprNodeKind::Conditional: {
      const auto* c = e.as<Conditional>();
      print_child(*c->cond, out, 1);
      out += " ? ";
      print_child(*c->then_expr, out, 0);
      out += " : ";
      print_child(*c->else_expr, out, 0);
      break;
    }
    case ExprNodeKind::Call: {
      const auto* c = e.as<Call>();
      out += c->callee;
      out += "(";
      for (size_t i = 0; i < c->args.size(); ++i) {
        if (i) out += ", ";
        print_expr_impl(*c->args[i], out, 0);
      }
      out += ")";
      break;
    }
  }
}

void indent_to(std::string& out, int indent) { out.append(static_cast<size_t>(indent) * 2, ' '); }

void print_var_decl(const VarDecl& d, std::string& out) {
  out += type_name(d.elem_type);
  out += " ";
  out += d.name;
  for (const auto& dim : d.dims) {
    out += "[";
    if (dim) print_expr_impl(*dim, out, 0);
    out += "]";
  }
  if (d.init) {
    out += " = ";
    print_expr_impl(*d.init, out, 0);
  }
}

void print_stmt_impl(const Stmt& stmt, std::string& out, int indent);

// The for-header + body, without annotations or hybrid dispatch (those are
// handled by the For case of print_stmt_impl, which may print the same loop
// node twice for a hybrid dual-version emission).
void print_for_loop(const For& s, std::string& out, int indent) {
  indent_to(out, indent);
  out += "for (";
  if (const auto* es = s.init->as<ExprStmt>()) {
    print_expr_impl(*es->expr, out, 0);
  } else if (const auto* ds = s.init->as<DeclStmt>()) {
    for (size_t i = 0; i < ds->decls.size(); ++i) {
      if (i) out += ", ";
      if (i == 0) {
        print_var_decl(*ds->decls[i], out);
      } else {
        out += ds->decls[i]->name;
        if (ds->decls[i]->init) {
          out += " = ";
          print_expr_impl(*ds->decls[i]->init, out, 0);
        }
      }
    }
  }
  out += "; ";
  if (s.cond) print_expr_impl(*s.cond, out, 0);
  out += "; ";
  if (s.step) print_expr_impl(*s.step, out, 0);
  out += ")\n";
  print_stmt_impl(*s.body, out, s.body->kind == StmtNodeKind::Compound ? indent : indent + 1);
}

void print_stmt_impl(const Stmt& stmt, std::string& out, int indent) {
  switch (stmt.kind) {
    case StmtNodeKind::ExprStmt:
      indent_to(out, indent);
      print_expr_impl(*stmt.as<ExprStmt>()->expr, out, 0);
      out += ";\n";
      break;
    case StmtNodeKind::DeclStmt: {
      const auto* ds = stmt.as<DeclStmt>();
      indent_to(out, indent);
      for (size_t i = 0; i < ds->decls.size(); ++i) {
        const auto& d = ds->decls[i];
        if (i == 0) {
          print_var_decl(*d, out);
        } else {
          out += ", ";
          out += d->name;
          for (const auto& dim : d->dims) {
            out += "[";
            if (dim) print_expr_impl(*dim, out, 0);
            out += "]";
          }
          if (d->init) {
            out += " = ";
            print_expr_impl(*d->init, out, 0);
          }
        }
      }
      out += ";\n";
      break;
    }
    case StmtNodeKind::Compound: {
      indent_to(out, indent);
      out += "{\n";
      for (const auto& s : stmt.as<Compound>()->body) print_stmt_impl(*s, out, indent + 1);
      indent_to(out, indent);
      out += "}\n";
      break;
    }
    case StmtNodeKind::If: {
      const auto* s = stmt.as<If>();
      indent_to(out, indent);
      out += "if (";
      print_expr_impl(*s->cond, out, 0);
      out += ")\n";
      print_stmt_impl(*s->then_branch, out,
                      s->then_branch->kind == StmtNodeKind::Compound ? indent : indent + 1);
      if (s->else_branch) {
        indent_to(out, indent);
        out += "else\n";
        print_stmt_impl(*s->else_branch, out,
                        s->else_branch->kind == StmtNodeKind::Compound ? indent : indent + 1);
      }
      break;
    }
    case StmtNodeKind::For: {
      const auto* s = stmt.as<For>();
      for (const auto& a : s->annotations) {
        indent_to(out, indent);
        out += a;
        out += "\n";
      }
      if (!s->hybrid_check.empty()) {
        // Hybrid inspector–executor dispatch: the same loop is printed twice,
        // the parallel version behind the runtime check, the serial one in
        // the else branch.
        indent_to(out, indent);
        out += "if (";
        out += s->hybrid_check;
        out += ") {\n";
        if (!s->hybrid_pragma.empty()) {
          indent_to(out, indent + 1);
          out += s->hybrid_pragma;
          out += "\n";
        }
        print_for_loop(*s, out, indent + 1);
        indent_to(out, indent);
        out += "} else {\n";
        print_for_loop(*s, out, indent + 1);
        indent_to(out, indent);
        out += "}\n";
        break;
      }
      print_for_loop(*s, out, indent);
      break;
    }
    case StmtNodeKind::While: {
      const auto* s = stmt.as<While>();
      indent_to(out, indent);
      out += "while (";
      print_expr_impl(*s->cond, out, 0);
      out += ")\n";
      print_stmt_impl(*s->body, out,
                      s->body->kind == StmtNodeKind::Compound ? indent : indent + 1);
      break;
    }
    case StmtNodeKind::Break:
      indent_to(out, indent);
      out += "break;\n";
      break;
    case StmtNodeKind::Continue:
      indent_to(out, indent);
      out += "continue;\n";
      break;
    case StmtNodeKind::Return: {
      const auto* s = stmt.as<Return>();
      indent_to(out, indent);
      out += "return";
      if (s->value) {
        out += " ";
        print_expr_impl(*s->value, out, 0);
      }
      out += ";\n";
      break;
    }
    case StmtNodeKind::Empty:
      indent_to(out, indent);
      out += ";\n";
      break;
  }
}

}  // namespace

std::string print_expr(const Expr& expr) {
  std::string out;
  print_expr_impl(expr, out, 0);
  return out;
}

std::string print_stmt(const Stmt& stmt, int indent) {
  std::string out;
  print_stmt_impl(stmt, out, indent);
  return out;
}

std::string print_program(const Program& program) {
  std::string out;
  for (const auto& g : program.globals) {
    print_var_decl(*g, out);
    out += ";\n";
  }
  if (!program.globals.empty()) out += "\n";
  for (const auto& f : program.functions) {
    out += type_name(f->return_type);
    out += " ";
    out += f->name;
    out += "(";
    for (size_t i = 0; i < f->params.size(); ++i) {
      if (i) out += ", ";
      const auto& p = f->params[i];
      out += type_name(p->elem_type);
      out += " ";
      out += p->name;
      for (const auto& dim : p->dims) {
        out += "[";
        if (dim) out += print_expr(*dim);
        out += "]";
      }
    }
    out += ")\n";
    print_stmt_impl(*f->body, out, 0);
    out += "\n";
  }
  return out;
}

}  // namespace sspar::ast
