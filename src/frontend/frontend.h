// Umbrella header for the mini-C frontend.
#pragma once

#include "frontend/ast.h"       // IWYU pragma: export
#include "frontend/lexer.h"     // IWYU pragma: export
#include "frontend/parser.h"    // IWYU pragma: export
#include "frontend/printer.h"   // IWYU pragma: export
#include "frontend/sema.h"      // IWYU pragma: export
