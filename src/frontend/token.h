// Tokens for the mini-C language accepted by the frontend.
#pragma once

#include <cstdint>
#include <string>

#include "support/source_location.h"

namespace sspar::ast {

enum class TokenKind : uint8_t {
  End,
  Identifier,
  IntLiteral,
  FloatLiteral,
  // Keywords
  KwInt,
  KwLong,
  KwFloat,
  KwDouble,
  KwVoid,
  KwFor,
  KwWhile,
  KwIf,
  KwElse,
  KwBreak,
  KwContinue,
  KwReturn,
  // Punctuation / operators
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Question,
  Colon,
  Assign,        // =
  PlusAssign,    // +=
  MinusAssign,   // -=
  StarAssign,    // *=
  SlashAssign,   // /=
  PercentAssign, // %=
  PlusPlus,
  MinusMinus,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Lt,
  Le,
  Gt,
  Ge,
  EqEq,
  NotEq,
  AmpAmp,
  PipePipe,
  Not,
};

struct Token {
  TokenKind kind = TokenKind::End;
  support::SourceLocation location;
  std::string text;     // identifier spelling
  int64_t int_value = 0;
  double float_value = 0.0;
};

const char* token_kind_name(TokenKind kind);

}  // namespace sspar::ast
