#include "frontend/parser.h"

#include <optional>

namespace sspar::ast {

namespace {

struct BinOpInfo {
  BinaryOp op;
  int precedence;  // higher binds tighter
};

std::optional<BinOpInfo> binop_info(TokenKind kind) {
  switch (kind) {
    case TokenKind::PipePipe: return BinOpInfo{BinaryOp::LOr, 1};
    case TokenKind::AmpAmp: return BinOpInfo{BinaryOp::LAnd, 2};
    case TokenKind::EqEq: return BinOpInfo{BinaryOp::Eq, 3};
    case TokenKind::NotEq: return BinOpInfo{BinaryOp::Ne, 3};
    case TokenKind::Lt: return BinOpInfo{BinaryOp::Lt, 4};
    case TokenKind::Le: return BinOpInfo{BinaryOp::Le, 4};
    case TokenKind::Gt: return BinOpInfo{BinaryOp::Gt, 4};
    case TokenKind::Ge: return BinOpInfo{BinaryOp::Ge, 4};
    case TokenKind::Plus: return BinOpInfo{BinaryOp::Add, 5};
    case TokenKind::Minus: return BinOpInfo{BinaryOp::Sub, 5};
    case TokenKind::Star: return BinOpInfo{BinaryOp::Mul, 6};
    case TokenKind::Slash: return BinOpInfo{BinaryOp::Div, 6};
    case TokenKind::Percent: return BinOpInfo{BinaryOp::Rem, 6};
    default: return std::nullopt;
  }
}

std::optional<AssignOp> assign_op(TokenKind kind) {
  switch (kind) {
    case TokenKind::Assign: return AssignOp::Assign;
    case TokenKind::PlusAssign: return AssignOp::Add;
    case TokenKind::MinusAssign: return AssignOp::Sub;
    case TokenKind::StarAssign: return AssignOp::Mul;
    case TokenKind::SlashAssign: return AssignOp::Div;
    case TokenKind::PercentAssign: return AssignOp::Rem;
    default: return std::nullopt;
  }
}

}  // namespace

Parser::Parser(std::string_view source, support::DiagnosticEngine& diags)
    : tokens_(Lexer::tokenize(source, diags)), diags_(diags) {}

const Token& Parser::peek(size_t ahead) const {
  size_t p = pos_ + ahead;
  if (p >= tokens_.size()) p = tokens_.size() - 1;  // End token
  return tokens_[p];
}

Token Parser::consume() {
  Token tok = current();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return tok;
}

bool Parser::match(TokenKind kind) {
  if (!check(kind)) return false;
  consume();
  return true;
}

Token Parser::expect(TokenKind kind, const char* context) {
  if (check(kind)) return consume();
  diags_.error(support::DiagCode::ParseExpectedToken, current().location,
               std::string("expected ") + token_kind_name(kind) + " " + context + ", found " +
                   token_kind_name(current().kind));
  return current();
}

void Parser::synchronize() {
  // Skip to the next statement boundary after a parse error.
  while (!check(TokenKind::End)) {
    if (match(TokenKind::Semi)) return;
    if (check(TokenKind::RBrace)) return;
    consume();
  }
}

bool Parser::at_type_keyword() const {
  switch (current().kind) {
    case TokenKind::KwInt:
    case TokenKind::KwLong:
    case TokenKind::KwFloat:
    case TokenKind::KwDouble:
    case TokenKind::KwVoid:
      return true;
    default:
      return false;
  }
}

TypeKind Parser::parse_type() {
  switch (current().kind) {
    case TokenKind::KwInt:
      consume();
      // "long long" / "long int" collapse to Int (64-bit in the interpreter).
      return TypeKind::Int;
    case TokenKind::KwLong:
      consume();
      while (check(TokenKind::KwLong) || check(TokenKind::KwInt)) consume();
      return TypeKind::Int;
    case TokenKind::KwFloat:
    case TokenKind::KwDouble:
      consume();
      return TypeKind::Double;
    case TokenKind::KwVoid:
      consume();
      return TypeKind::Void;
    default:
      diags_.error(support::DiagCode::ParseExpectedType, current().location, "expected type");
      consume();
      return TypeKind::Int;
  }
}

std::unique_ptr<Program> Parser::parse_program() {
  auto program = std::make_unique<Program>();
  while (!check(TokenKind::End)) {
    parse_top_level(*program);
  }
  return program;
}

void Parser::parse_top_level(Program& program) {
  if (!at_type_keyword()) {
    diags_.error(support::DiagCode::ParseExpectedDecl, current().location,
                 "expected declaration at top level");
    synchronize();
    return;
  }
  TypeKind base = parse_type();
  Token name = expect(TokenKind::Identifier, "in declaration");
  if (check(TokenKind::LParen)) {
    program.functions.push_back(parse_function_rest(base, name));
    return;
  }
  // Global variable(s).
  for (;;) {
    auto decl = std::make_unique<VarDecl>();
    decl->name = name.text;
    decl->elem_type = base;
    decl->location = name.location;
    while (match(TokenKind::LBracket)) {
      if (check(TokenKind::RBracket)) {
        decl->dims.push_back(nullptr);
      } else {
        decl->dims.push_back(parse_expr());
      }
      expect(TokenKind::RBracket, "after array dimension");
    }
    if (match(TokenKind::Assign)) decl->init = parse_assignment();
    program.globals.push_back(std::move(decl));
    if (!match(TokenKind::Comma)) break;
    name = expect(TokenKind::Identifier, "after ',' in declaration");
  }
  expect(TokenKind::Semi, "after declaration");
}

std::unique_ptr<VarDecl> Parser::parse_declarator(TypeKind base, bool is_param) {
  auto decl = std::make_unique<VarDecl>();
  Token name = expect(TokenKind::Identifier, "in declaration");
  decl->name = name.text;
  decl->elem_type = base;
  decl->is_param = is_param;
  decl->location = name.location;
  while (match(TokenKind::LBracket)) {
    if (check(TokenKind::RBracket)) {
      decl->dims.push_back(nullptr);
    } else {
      decl->dims.push_back(parse_expr());
    }
    expect(TokenKind::RBracket, "after array dimension");
  }
  if (!is_param && match(TokenKind::Assign)) decl->init = parse_assignment();
  return decl;
}

std::unique_ptr<FuncDecl> Parser::parse_function_rest(TypeKind ret, Token name_tok) {
  auto func = std::make_unique<FuncDecl>();
  func->name = name_tok.text;
  func->return_type = ret;
  func->location = name_tok.location;
  expect(TokenKind::LParen, "after function name");
  if (!check(TokenKind::RParen) && !check(TokenKind::KwVoid)) {
    for (;;) {
      TypeKind ptype = parse_type();
      func->params.push_back(parse_declarator(ptype, /*is_param=*/true));
      if (!match(TokenKind::Comma)) break;
    }
  } else if (check(TokenKind::KwVoid) && peek(1).kind == TokenKind::RParen) {
    consume();  // void parameter list
  }
  expect(TokenKind::RParen, "after parameter list");
  auto body = parse_compound();
  auto* compound = body->as<Compound>();
  func->body.reset(static_cast<Compound*>(body.release()));
  (void)compound;
  return func;
}

StmtPtr Parser::parse_compound() {
  auto compound = std::make_unique<Compound>();
  compound->location = current().location;
  expect(TokenKind::LBrace, "to open block");
  while (!check(TokenKind::RBrace) && !check(TokenKind::End)) {
    compound->body.push_back(parse_stmt());
  }
  expect(TokenKind::RBrace, "to close block");
  return compound;
}

StmtPtr Parser::parse_decl_stmt() {
  auto decl_stmt = std::make_unique<DeclStmt>();
  decl_stmt->location = current().location;
  TypeKind base = parse_type();
  for (;;) {
    decl_stmt->decls.push_back(parse_declarator(base, /*is_param=*/false));
    if (!match(TokenKind::Comma)) break;
  }
  expect(TokenKind::Semi, "after declaration");
  return decl_stmt;
}

StmtPtr Parser::parse_stmt() {
  switch (current().kind) {
    case TokenKind::LBrace:
      return parse_compound();
    case TokenKind::KwIf:
      return parse_if();
    case TokenKind::KwFor:
      return parse_for();
    case TokenKind::KwWhile:
      return parse_while();
    case TokenKind::KwBreak: {
      auto s = std::make_unique<Break>();
      s->location = consume().location;
      expect(TokenKind::Semi, "after 'break'");
      return s;
    }
    case TokenKind::KwContinue: {
      auto s = std::make_unique<Continue>();
      s->location = consume().location;
      expect(TokenKind::Semi, "after 'continue'");
      return s;
    }
    case TokenKind::KwReturn: {
      auto loc = consume().location;
      ExprPtr value;
      if (!check(TokenKind::Semi)) value = parse_expr();
      expect(TokenKind::Semi, "after return statement");
      auto s = std::make_unique<Return>(std::move(value));
      s->location = loc;
      return s;
    }
    case TokenKind::Semi: {
      auto s = std::make_unique<Empty>();
      s->location = consume().location;
      return s;
    }
    default:
      if (at_type_keyword()) return parse_decl_stmt();
      {
        auto loc = current().location;
        auto expr = parse_expr();
        expect(TokenKind::Semi, "after expression statement");
        auto s = std::make_unique<ExprStmt>(std::move(expr));
        s->location = loc;
        return s;
      }
  }
}

StmtPtr Parser::parse_if() {
  auto loc = consume().location;  // 'if'
  expect(TokenKind::LParen, "after 'if'");
  auto cond = parse_expr();
  expect(TokenKind::RParen, "after if condition");
  auto then_branch = parse_stmt();
  StmtPtr else_branch;
  if (match(TokenKind::KwElse)) else_branch = parse_stmt();
  auto s = std::make_unique<If>(std::move(cond), std::move(then_branch), std::move(else_branch));
  s->location = loc;
  return s;
}

StmtPtr Parser::parse_for() {
  auto loc = consume().location;  // 'for'
  expect(TokenKind::LParen, "after 'for'");
  StmtPtr init;
  if (match(TokenKind::Semi)) {
    init = std::make_unique<Empty>();
  } else if (at_type_keyword()) {
    init = parse_decl_stmt();
  } else {
    auto expr = parse_expr();
    expect(TokenKind::Semi, "after for-init");
    init = std::make_unique<ExprStmt>(std::move(expr));
  }
  ExprPtr cond;
  if (!check(TokenKind::Semi)) cond = parse_expr();
  expect(TokenKind::Semi, "after for-condition");
  ExprPtr step;
  if (!check(TokenKind::RParen)) step = parse_expr();
  expect(TokenKind::RParen, "after for-step");
  auto body = parse_stmt();
  auto s = std::make_unique<For>(std::move(init), std::move(cond), std::move(step),
                                 std::move(body));
  s->location = loc;
  return s;
}

StmtPtr Parser::parse_while() {
  auto loc = consume().location;  // 'while'
  expect(TokenKind::LParen, "after 'while'");
  auto cond = parse_expr();
  expect(TokenKind::RParen, "after while condition");
  auto body = parse_stmt();
  auto s = std::make_unique<While>(std::move(cond), std::move(body));
  s->location = loc;
  return s;
}

ExprPtr Parser::parse_assignment() {
  auto lhs = parse_conditional();
  if (auto op = assign_op(current().kind)) {
    auto loc = consume().location;
    auto rhs = parse_assignment();  // right-associative
    auto e = std::make_unique<Assign>(*op, std::move(lhs), std::move(rhs));
    e->location = loc;
    return e;
  }
  return lhs;
}

ExprPtr Parser::parse_conditional() {
  auto cond = parse_binary(1);
  if (!match(TokenKind::Question)) return cond;
  auto then_expr = parse_expr();
  expect(TokenKind::Colon, "in conditional expression");
  auto else_expr = parse_conditional();
  auto e = std::make_unique<Conditional>(std::move(cond), std::move(then_expr),
                                         std::move(else_expr));
  e->location = e->cond->location;
  return e;
}

ExprPtr Parser::parse_binary(int min_precedence) {
  auto lhs = parse_unary();
  for (;;) {
    auto info = binop_info(current().kind);
    if (!info || info->precedence < min_precedence) return lhs;
    auto loc = consume().location;
    auto rhs = parse_binary(info->precedence + 1);
    auto e = std::make_unique<Binary>(info->op, std::move(lhs), std::move(rhs));
    e->location = loc;
    lhs = std::move(e);
  }
}

ExprPtr Parser::parse_unary() {
  switch (current().kind) {
    case TokenKind::Minus: {
      auto loc = consume().location;
      auto e = std::make_unique<Unary>(UnaryOp::Neg, parse_unary());
      e->location = loc;
      return e;
    }
    case TokenKind::Plus:
      consume();
      return parse_unary();
    case TokenKind::Not: {
      auto loc = consume().location;
      auto e = std::make_unique<Unary>(UnaryOp::Not, parse_unary());
      e->location = loc;
      return e;
    }
    case TokenKind::PlusPlus:
    case TokenKind::MinusMinus: {
      bool inc = current().kind == TokenKind::PlusPlus;
      auto loc = consume().location;
      auto target = parse_unary();
      auto e = std::make_unique<IncDec>(inc ? IncDecOp::PreInc : IncDecOp::PreDec,
                                        std::move(target));
      e->location = loc;
      return e;
    }
    default:
      return parse_postfix();
  }
}

ExprPtr Parser::parse_postfix() {
  auto expr = parse_primary();
  for (;;) {
    if (match(TokenKind::LBracket)) {
      auto index = parse_expr();
      expect(TokenKind::RBracket, "after subscript");
      auto loc = expr->location;
      auto e = std::make_unique<ArrayRef>(std::move(expr), std::move(index));
      e->location = loc;
      expr = std::move(e);
    } else if (check(TokenKind::LParen) && expr->kind == ExprNodeKind::VarRef) {
      consume();
      std::vector<ExprPtr> args;
      if (!check(TokenKind::RParen)) {
        for (;;) {
          args.push_back(parse_assignment());
          if (!match(TokenKind::Comma)) break;
        }
      }
      expect(TokenKind::RParen, "after call arguments");
      auto loc = expr->location;
      auto e = std::make_unique<Call>(expr->as<VarRef>()->name, std::move(args));
      e->location = loc;
      expr = std::move(e);
    } else if (check(TokenKind::PlusPlus) || check(TokenKind::MinusMinus)) {
      bool inc = current().kind == TokenKind::PlusPlus;
      auto loc = consume().location;
      auto e = std::make_unique<IncDec>(inc ? IncDecOp::PostInc : IncDecOp::PostDec,
                                        std::move(expr));
      e->location = loc;
      expr = std::move(e);
    } else {
      return expr;
    }
  }
}

ExprPtr Parser::parse_primary() {
  switch (current().kind) {
    case TokenKind::IntLiteral: {
      Token tok = consume();
      auto e = std::make_unique<IntLit>(tok.int_value);
      e->location = tok.location;
      return e;
    }
    case TokenKind::FloatLiteral: {
      Token tok = consume();
      auto e = std::make_unique<FloatLit>(tok.float_value);
      e->location = tok.location;
      return e;
    }
    case TokenKind::Identifier: {
      Token tok = consume();
      auto e = std::make_unique<VarRef>(tok.text);
      e->location = tok.location;
      return e;
    }
    case TokenKind::LParen: {
      consume();
      auto e = parse_expr();
      expect(TokenKind::RParen, "to close parenthesized expression");
      return e;
    }
    default:
      diags_.error(support::DiagCode::ParseExpectedExpr, current().location,
                   std::string("expected expression, found ") +
                       token_kind_name(current().kind));
      consume();
      return std::make_unique<IntLit>(0);
  }
}

}  // namespace sspar::ast
