#include "frontend/sema.h"

#include <unordered_map>
#include <vector>

#include "frontend/parser.h"

namespace sspar::ast {

namespace {

class Resolver {
 public:
  Resolver(sym::SymbolTable& symbols, support::DiagnosticEngine& diags)
      : symbols_(symbols), diags_(diags) {}

  void run(Program& program) {
    program_ = &program;
    push_scope();
    for (auto& g : program.globals) declare(*g);
    for (auto& g : program.globals) {
      if (g->init) resolve_expr(*g->init);
      for (auto& d : g->dims) {
        if (d) resolve_expr(*d);
      }
    }
    for (auto& f : program.functions) {
      next_loop_id_ = 0;
      push_scope();
      for (auto& p : f->params) {
        declare(*p);
        for (auto& d : p->dims) {
          if (d) resolve_expr(*d);
        }
      }
      resolve_stmt(*f->body);
      pop_scope();
    }
    pop_scope();
  }

 private:
  void push_scope() { scopes_.emplace_back(); }
  void pop_scope() { scopes_.pop_back(); }

  void declare(VarDecl& decl) {
    auto& scope = scopes_.back();
    if (scope.count(decl.name)) {
      diags_.error(support::DiagCode::SemaRedeclaration, decl.location,
                   "redeclaration of '" + decl.name + "'");
      // Rebind: later references see the newer declaration, like C.
    }
    decl.symbol = symbols_.fresh(decl.name);
    scope[decl.name] = &decl;
  }

  const VarDecl* lookup(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) return found->second;
    }
    return nullptr;
  }

  void resolve_stmt(Stmt& stmt) {
    switch (stmt.kind) {
      case StmtNodeKind::ExprStmt:
        resolve_expr(*stmt.as<ExprStmt>()->expr);
        break;
      case StmtNodeKind::DeclStmt:
        for (auto& d : stmt.as<DeclStmt>()->decls) {
          for (auto& dim : d->dims) {
            if (dim) resolve_expr(*dim);
          }
          if (d->init) resolve_expr(*d->init);
          declare(*d);
        }
        break;
      case StmtNodeKind::Compound: {
        push_scope();
        for (auto& s : stmt.as<Compound>()->body) resolve_stmt(*s);
        pop_scope();
        break;
      }
      case StmtNodeKind::If: {
        auto* s = stmt.as<If>();
        resolve_expr(*s->cond);
        resolve_stmt(*s->then_branch);
        if (s->else_branch) resolve_stmt(*s->else_branch);
        break;
      }
      case StmtNodeKind::For: {
        auto* s = stmt.as<For>();
        s->loop_id = next_loop_id_++;
        push_scope();  // for-init declarations scope over the loop
        resolve_stmt(*s->init);
        if (s->cond) resolve_expr(*s->cond);
        if (s->step) resolve_expr(*s->step);
        resolve_stmt(*s->body);
        pop_scope();
        break;
      }
      case StmtNodeKind::While: {
        auto* s = stmt.as<While>();
        resolve_expr(*s->cond);
        resolve_stmt(*s->body);
        break;
      }
      case StmtNodeKind::Return: {
        auto* s = stmt.as<Return>();
        if (s->value) resolve_expr(*s->value);
        break;
      }
      default:
        break;
    }
  }

  void resolve_expr(Expr& expr) {
    switch (expr.kind) {
      case ExprNodeKind::VarRef: {
        auto* e = expr.as<VarRef>();
        e->decl = lookup(e->name);
        if (!e->decl) {
          diags_.error(support::DiagCode::SemaUndeclared, e->location,
                       "use of undeclared identifier '" + e->name + "'");
        }
        break;
      }
      case ExprNodeKind::ArrayRef: {
        auto* e = expr.as<ArrayRef>();
        resolve_expr(*e->base);
        resolve_expr(*e->index);
        if (const VarRef* root = e->root()) {
          if (root->decl && !root->decl->is_array()) {
            diags_.error(support::DiagCode::SemaNotAnArray, e->location,
                         "subscripted variable '" + root->name + "' is not an array");
          } else if (root->decl && e->subscripts().size() > root->decl->dims.size()) {
            diags_.error(support::DiagCode::SemaTooManySubscripts, e->location,
                         "too many subscripts for array '" + root->name + "'");
          }
        } else {
          diags_.error(support::DiagCode::SemaSubscriptBase, e->location,
                       "subscript base must be a variable");
        }
        break;
      }
      case ExprNodeKind::Binary: {
        auto* e = expr.as<Binary>();
        resolve_expr(*e->lhs);
        resolve_expr(*e->rhs);
        break;
      }
      case ExprNodeKind::Unary:
        resolve_expr(*expr.as<Unary>()->operand);
        break;
      case ExprNodeKind::Assign: {
        auto* e = expr.as<Assign>();
        resolve_expr(*e->target);
        resolve_expr(*e->value);
        if (e->target->kind != ExprNodeKind::VarRef &&
            e->target->kind != ExprNodeKind::ArrayRef) {
          diags_.error(support::DiagCode::SemaBadAssignTarget, e->location,
                       "assignment target must be a variable or array element");
        }
        break;
      }
      case ExprNodeKind::IncDec: {
        auto* e = expr.as<IncDec>();
        resolve_expr(*e->target);
        if (e->target->kind != ExprNodeKind::VarRef &&
            e->target->kind != ExprNodeKind::ArrayRef) {
          diags_.error(support::DiagCode::SemaBadIncrementTarget, e->location,
                       "increment target must be a variable or array element");
        }
        break;
      }
      case ExprNodeKind::Conditional: {
        auto* e = expr.as<Conditional>();
        resolve_expr(*e->cond);
        resolve_expr(*e->then_expr);
        resolve_expr(*e->else_expr);
        break;
      }
      case ExprNodeKind::Call: {
        auto* e = expr.as<Call>();
        // Functions are not block-scoped: resolve against the whole program
        // so helpers may be defined after their callers. Unknown names stay
        // unbound (opaque to the analysis) rather than erroring.
        e->decl = program_ ? program_->find_function(e->callee) : nullptr;
        for (auto& a : e->args) resolve_expr(*a);
        break;
      }
      default:
        break;
    }
  }

  sym::SymbolTable& symbols_;
  support::DiagnosticEngine& diags_;
  const Program* program_ = nullptr;
  std::vector<std::unordered_map<std::string, const VarDecl*>> scopes_;
  int next_loop_id_ = 0;
};

}  // namespace

bool resolve(Program& program, sym::SymbolTable& symbols, support::DiagnosticEngine& diags) {
  size_t errors_before = diags.error_count();
  Resolver resolver(symbols, diags);
  resolver.run(program);
  return diags.error_count() == errors_before;
}

ParseResult parse_and_resolve(std::string_view source, support::DiagnosticEngine& diags) {
  ParseResult result;
  Parser parser(source, diags);
  result.program = parser.parse_program();
  result.symbols = std::make_shared<sym::SymbolTable>();
  if (diags.has_errors()) return result;
  result.ok = resolve(*result.program, *result.symbols, diags);
  return result;
}

}  // namespace sspar::ast
