// Persistent, disk-backed store for cross-program function summaries.
//
// The ipa::CrossProgramCache makes repeated helpers cheap *within* one
// process; this store makes them cheap *across* processes. It serializes
// ipa::PortableSummary records keyed by their 128-bit content addresses into
// a single binary file, so a later `sspar-analyze` run (or a long-lived
// `--serve` daemon restart) starts from a warm cache instead of paying full
// re-summarization.
//
// File format (little-endian, version 2):
//
//   header:  magic "SSPS" | u32 version | u64 next_generation
//   record*: u64 key.hi | u64 key.lo | u64 generation
//            | u32 payload_size | u64 payload_fnv | payload bytes
//
// The payload is a self-contained binary serialization of one
// PortableSummary (see serialize_summary/deserialize_summary). Robustness
// contract:
//
//   * A wrong magic or unsupported version rejects the whole file (it is
//     quarantined by renaming to "<path>.corrupt" so a later flush can
//     write a fresh store); the run proceeds with an empty store.
//   * A truncated or checksum-mismatched record stops the load at the last
//     good record — everything before it is kept, nothing after it is
//     trusted. Bad files never crash the analyzer and never surface a
//     corrupted summary (the checksum covers the payload bytes and the
//     deserializer bounds-checks every field).
//   * flush() writes the entire store to "<path>.tmp", fsyncs it, and
//     renames it over the original, so a killed process leaves either the
//     old file or the new one, never a torn mix.
//
// Crash-safe journal (StoreOptions::journal): between full flushes the
// store appends write-ahead records to the "<path>.journal" sidecar — one
// fsync'd batch per absorb() — and commit() only pays the O(store) atomic
// rewrite when the journal grows past journal_checkpoint_bytes or eviction
// is due. On open() the journal is replayed over the base file: 'A' (add)
// records re-insert summaries absorbed since the last checkpoint, 'T'
// (touch) records re-apply generation bumps. A truncated or corrupted
// journal tail is discarded at the last good record (and physically
// truncated so later appends never follow garbage), so a SIGKILL at ANY
// point — including mid-rename and mid-append, see the store.* fault points
// in support/faultpoint.h — loses at most the in-flight absorb batch. The
// crash-matrix test (tests/store_crash_test.cpp) kills a child process at
// every registered store.* fault point and asserts exactly this.
//
// Merge semantics are first-writer-wins, matching the in-memory cache: a
// record already present keeps its payload (identical key => identical
// summary, so either copy serves); absorbing a cache only ADDS records for
// new keys. Each record carries a generation — the store's monotonic flush
// counter — bumped when the record's key was HIT during the absorbed run.
// When the store exceeds its size cap, flush() evicts lowest-generation
// records first (ties broken by key, so eviction is deterministic): entries
// that keep getting used stay warm, dead code ages out.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "ipa/cross_cache.h"

namespace sspar::store {

// --- Record payload serialization (exposed for the robustness tests) --------

// Self-contained binary encoding of one PortableSummary.
std::string serialize_summary(const ipa::PortableSummary& summary);

// Null on any malformed input: truncated buffer, out-of-range tag, oversized
// length prefix, trailing garbage. Never reads past `bytes`.
std::optional<ipa::PortableSummary> deserialize_summary(std::string_view bytes);

// 64-bit FNV-1a of a byte string — the per-record payload checksum.
uint64_t payload_checksum(std::string_view bytes);

// ---------------------------------------------------------------------------

struct StoreOptions {
  // Maximum records kept across a flush(); lowest generations evicted first.
  size_t max_entries = 4096;
  // Crash-safe write-ahead journal: absorb() appends fsync'd WAL records to
  // "<path>.journal" and commit() defers the full atomic rewrite until the
  // journal exceeds journal_checkpoint_bytes (or eviction is due).
  bool journal = false;
  size_t journal_checkpoint_bytes = 1u << 20;
};

class SummaryStore {
 public:
  struct Stats {
    size_t loaded = 0;    // records read from disk at open()
    size_t rejected = 0;  // corrupt/truncated records (or 1 whole bad file) skipped
    size_t absorbed = 0;  // new records added from absorb() since open
    size_t evicted = 0;   // records dropped by the size cap at flush()
    size_t flushed = 0;   // records written by the last flush()
    // Journal counters (always 0 with StoreOptions::journal off).
    size_t journal_replayed = 0;  // 'A' records decoded from the journal at open()
    size_t journal_appended = 0;  // WAL records appended by absorb() since open
  };

  explicit SummaryStore(std::string path, StoreOptions options = {});
  ~SummaryStore();

  // Loads the on-disk records (if the file exists), then — in journal mode —
  // replays the "<path>.journal" sidecar over them ('A' records insert
  // first-writer-wins, 'T' records bump generations; a corrupt tail is
  // dropped at the last good record and physically truncated). Safe on
  // missing files (starts empty). Returns false only when the base file
  // existed but was rejected wholesale (bad magic/version) — the store
  // still opens empty (plus any journal records) and quarantines the bad
  // file.
  bool open();

  // Inserts every record into `cache` as a PRELOADED entry (cache hits on
  // these count as persistent-store hits). Call once per cache, before any
  // analysis. Returns the number of entries inserted.
  size_t preload(ipa::CrossProgramCache& cache);

  // First-writer-wins merge of the cache's current contents: records for new
  // content keys are added at the current generation; records whose key was
  // hit during the run have their generation bumped (so eviction keeps warm
  // entries). Existing payloads are never overwritten. Thread-safe; a server
  // absorbs after every request.
  void absorb(const ipa::CrossProgramCache& cache);

  // Evicts down to the size cap, then atomically rewrites the backing file
  // (write "<path>.tmp", fsync, rename over `path`) and truncates the
  // journal — every journaled record is now in the base file. Returns false
  // on I/O failure (the old file is left untouched). Thread-safe.
  bool flush();

  // Durability policy hook for per-request orchestration: with the journal
  // off this is exactly flush(); with it on, the WAL batches fsync'd by
  // absorb() already make the run durable, so commit() only performs the
  // full rewrite when the journal passed journal_checkpoint_bytes, the
  // record count exceeds the cap (eviction), or a journal write previously
  // failed (degraded mode: fall back to full flushes). Thread-safe.
  bool commit();

  size_t size() const;
  Stats stats() const;
  const std::string& path() const { return path_; }

 private:
  struct Record {
    std::string payload;  // serialized PortableSummary, written verbatim
    uint64_t generation = 0;
  };

  bool load_file(const std::string& contents);
  // Replays "<path>.journal" into records_ (lock held). Truncates the file
  // to the last good record when the tail is torn or corrupt.
  void replay_journal_locked();
  // Lazily opens the journal fd (O_APPEND); false on failure.
  bool ensure_journal_locked();
  // Appends one framed batch and fsyncs it; flips journal_failed_ on error.
  void append_journal_locked(const std::string& batch, size_t record_count);

  std::string path_;
  StoreOptions options_;
  mutable std::mutex mutex_;
  std::map<ipa::CacheKey, Record> records_;
  uint64_t generation_ = 1;  // current run's generation (monotonic across flushes)
  Stats stats_;
  int journal_fd_ = -1;          // lazily opened append fd for the WAL sidecar
  size_t journal_bytes_ = 0;     // good bytes on disk (replayed + appended)
  bool journal_failed_ = false;  // a WAL write failed; commit() full-flushes
};

}  // namespace sspar::store
