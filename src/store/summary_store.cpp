#include "store/summary_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "support/faultpoint.h"

namespace sspar::store {

namespace {

// --- Binary encoding helpers ------------------------------------------------
// Fixed-width little-endian integers, length-prefixed strings, a presence
// byte for optionals. The reader bounds-checks every field and reports
// failure instead of reading past the buffer, so a corrupted payload can
// never surface a malformed summary.

class Writer {
 public:
  void u8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
  void u64(uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
  void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(std::string_view s) {
    u32(static_cast<uint32_t>(s.size()));
    out_.append(s.data(), s.size());
  }
  std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  bool u8(uint8_t& v) {
    if (pos_ + 1 > bytes_.size()) return fail();
    v = static_cast<uint8_t>(bytes_[pos_++]);
    return true;
  }
  bool u32(uint32_t& v) {
    if (pos_ + 4 > bytes_.size()) return fail();
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[pos_ + i])) << (8 * i);
    }
    pos_ += 4;
    return true;
  }
  bool u64(uint64_t& v) {
    if (pos_ + 8 > bytes_.size()) return fail();
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[pos_ + i])) << (8 * i);
    }
    pos_ += 8;
    return true;
  }
  bool i64(int64_t& v) {
    uint64_t raw = 0;
    if (!u64(raw)) return false;
    v = static_cast<int64_t>(raw);
    return true;
  }
  bool boolean(bool& v) {
    uint8_t raw = 0;
    if (!u8(raw)) return false;
    if (raw > 1) return fail();
    v = raw != 0;
    return true;
  }
  bool str(std::string& s) {
    uint32_t size = 0;
    if (!u32(size)) return false;
    if (pos_ + size > bytes_.size()) return fail();
    s.assign(bytes_.data() + pos_, size);
    pos_ += size;
    return true;
  }
  // Element counts are bounds-checked against the remaining bytes (each
  // element costs at least one byte), so a corrupted count cannot trigger a
  // multi-gigabyte allocation.
  bool count(uint32_t& n) {
    if (!u32(n)) return false;
    if (n > bytes_.size() - pos_) return fail();
    return true;
  }
  bool done() const { return ok_ && pos_ == bytes_.size(); }
  bool ok() const { return ok_; }

 private:
  bool fail() {
    ok_ = false;
    return false;
  }
  std::string_view bytes_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// --- PortableSummary field encoders -----------------------------------------

void put_expr(Writer& w, const ipa::PortableExpr& e) {
  w.u8(static_cast<uint8_t>(e.kind));
  w.i64(e.value);
  w.str(e.symbol);
  w.u32(static_cast<uint32_t>(e.operands.size()));
  for (const auto& op : e.operands) put_expr(w, op);
  w.u32(static_cast<uint32_t>(e.coeffs.size()));
  for (int64_t c : e.coeffs) w.i64(c);
}

bool get_expr(Reader& r, ipa::PortableExpr& e, int depth = 0) {
  // Expression trees in practice are a handful of levels deep; a corrupted
  // operand count must not recurse the stack away.
  if (depth > 64) return false;
  uint8_t kind = 0;
  if (!r.u8(kind)) return false;
  if (kind > static_cast<uint8_t>(sym::ExprKind::Bottom)) return false;
  e.kind = static_cast<sym::ExprKind>(kind);
  if (!r.i64(e.value) || !r.str(e.symbol)) return false;
  uint32_t n = 0;
  if (!r.count(n)) return false;
  e.operands.resize(n);
  for (auto& op : e.operands) {
    if (!get_expr(r, op, depth + 1)) return false;
  }
  if (!r.count(n)) return false;
  e.coeffs.resize(n);
  for (auto& c : e.coeffs) {
    if (!r.i64(c)) return false;
  }
  return true;
}

void put_opt_expr(Writer& w, const std::optional<ipa::PortableExpr>& e) {
  w.boolean(e.has_value());
  if (e) put_expr(w, *e);
}

bool get_opt_expr(Reader& r, std::optional<ipa::PortableExpr>& e) {
  bool present = false;
  if (!r.boolean(present)) return false;
  if (!present) {
    e.reset();
    return true;
  }
  e.emplace();
  return get_expr(r, *e);
}

void put_range(Writer& w, const ipa::PortableRange& range) {
  put_opt_expr(w, range.lo);
  put_opt_expr(w, range.hi);
}

bool get_range(Reader& r, ipa::PortableRange& range) {
  return get_opt_expr(r, range.lo) && get_opt_expr(r, range.hi);
}

void put_strings(Writer& w, const std::vector<std::string>& v) {
  w.u32(static_cast<uint32_t>(v.size()));
  for (const auto& s : v) w.str(s);
}

bool get_strings(Reader& r, std::vector<std::string>& v) {
  uint32_t n = 0;
  if (!r.count(n)) return false;
  v.resize(n);
  for (auto& s : v) {
    if (!r.str(s)) return false;
  }
  return true;
}

void put_effect(Writer& w, const ipa::PortableEffect& e) {
  w.str(e.array);
  w.u64(e.dims);
  put_opt_expr(w, e.index);
  put_range(w, e.index_range);
  put_range(w, e.value);
  w.boolean(e.conditional);
  w.boolean(e.from_inner);
  w.u32(static_cast<uint32_t>(e.guards.size()));
  for (const auto& g : e.guards) {
    w.str(g.array);
    put_expr(w, g.index);
    w.i64(g.min);
  }
  w.str(e.via_array);
  put_range(w, e.via_domain);
  w.str(e.post_inc_subscript);
}

bool get_effect(Reader& r, ipa::PortableEffect& e) {
  uint64_t dims = 0;
  if (!r.str(e.array) || !r.u64(dims)) return false;
  e.dims = static_cast<size_t>(dims);
  if (!get_opt_expr(r, e.index) || !get_range(r, e.index_range) || !get_range(r, e.value)) {
    return false;
  }
  if (!r.boolean(e.conditional) || !r.boolean(e.from_inner)) return false;
  uint32_t n = 0;
  if (!r.count(n)) return false;
  e.guards.resize(n);
  for (auto& g : e.guards) {
    if (!r.str(g.array) || !get_expr(r, g.index) || !r.i64(g.min)) return false;
  }
  return r.str(e.via_array) && get_range(r, e.via_domain) && r.str(e.post_inc_subscript);
}

void put_facts(Writer& w, const ipa::PortableArrayFacts& f) {
  w.u32(static_cast<uint32_t>(f.values.size()));
  for (const auto& v : f.values) {
    put_expr(w, v.lo);
    put_expr(w, v.hi);
    put_range(w, v.value);
  }
  w.u32(static_cast<uint32_t>(f.steps.size()));
  for (const auto& s : f.steps) {
    put_expr(w, s.lo);
    put_expr(w, s.hi);
    put_range(w, s.step);
  }
  w.u32(static_cast<uint32_t>(f.injectives.size()));
  for (const auto& i : f.injectives) {
    put_expr(w, i.lo);
    put_expr(w, i.hi);
    w.boolean(i.min_value.has_value());
    if (i.min_value) w.i64(*i.min_value);
    w.boolean(i.from_chain);
  }
  w.u32(static_cast<uint32_t>(f.identities.size()));
  for (const auto& i : f.identities) {
    put_expr(w, i.lo);
    put_expr(w, i.hi);
  }
}

bool get_facts(Reader& r, ipa::PortableArrayFacts& f) {
  uint32_t n = 0;
  if (!r.count(n)) return false;
  f.values.resize(n);
  for (auto& v : f.values) {
    if (!get_expr(r, v.lo) || !get_expr(r, v.hi) || !get_range(r, v.value)) return false;
  }
  if (!r.count(n)) return false;
  f.steps.resize(n);
  for (auto& s : f.steps) {
    if (!get_expr(r, s.lo) || !get_expr(r, s.hi) || !get_range(r, s.step)) return false;
  }
  if (!r.count(n)) return false;
  f.injectives.resize(n);
  for (auto& i : f.injectives) {
    if (!get_expr(r, i.lo) || !get_expr(r, i.hi)) return false;
    bool present = false;
    if (!r.boolean(present)) return false;
    if (present) {
      int64_t v = 0;
      if (!r.i64(v)) return false;
      i.min_value = v;
    } else {
      i.min_value.reset();
    }
    if (!r.boolean(i.from_chain)) return false;
  }
  if (!r.count(n)) return false;
  f.identities.resize(n);
  for (auto& i : f.identities) {
    if (!get_expr(r, i.lo) || !get_expr(r, i.hi)) return false;
  }
  return true;
}

}  // namespace

std::string serialize_summary(const ipa::PortableSummary& s) {
  Writer w;
  w.str(s.function);
  put_strings(w, s.may_write_scalars);
  put_strings(w, s.may_write_arrays);
  put_strings(w, s.definite_scalar_writes);
  put_strings(w, s.exposed_scalar_reads);
  w.boolean(s.writes_array_params);
  w.boolean(s.analyzable);
  w.boolean(s.opaque);
  w.str(s.failure);
  w.u32(s.failure_line);
  w.u32(s.failure_column);
  w.u32(static_cast<uint32_t>(s.scalar_finals.size()));
  for (const auto& [name, range] : s.scalar_finals) {
    w.str(name);
    put_range(w, range);
  }
  w.u32(static_cast<uint32_t>(s.writes.size()));
  for (const auto& e : s.writes) put_effect(w, e);
  w.u32(static_cast<uint32_t>(s.reads.size()));
  for (const auto& e : s.reads) put_effect(w, e);
  w.u32(static_cast<uint32_t>(s.end_facts.size()));
  for (const auto& [array, facts] : s.end_facts) {
    w.str(array);
    put_facts(w, facts);
  }
  w.boolean(s.return_value.has_value());
  if (s.return_value) put_range(w, *s.return_value);
  w.u64(s.entry_fingerprint);
  return w.take();
}

std::optional<ipa::PortableSummary> deserialize_summary(std::string_view bytes) {
  Reader r(bytes);
  ipa::PortableSummary s;
  if (!r.str(s.function) || !get_strings(r, s.may_write_scalars) ||
      !get_strings(r, s.may_write_arrays) || !get_strings(r, s.definite_scalar_writes) ||
      !get_strings(r, s.exposed_scalar_reads)) {
    return std::nullopt;
  }
  if (!r.boolean(s.writes_array_params) || !r.boolean(s.analyzable) ||
      !r.boolean(s.opaque) || !r.str(s.failure) || !r.u32(s.failure_line) ||
      !r.u32(s.failure_column)) {
    return std::nullopt;
  }
  uint32_t n = 0;
  if (!r.count(n)) return std::nullopt;
  for (uint32_t i = 0; i < n; ++i) {
    std::string name;
    ipa::PortableRange range;
    if (!r.str(name) || !get_range(r, range)) return std::nullopt;
    s.scalar_finals.emplace(std::move(name), std::move(range));
  }
  if (!r.count(n)) return std::nullopt;
  s.writes.resize(n);
  for (auto& e : s.writes) {
    if (!get_effect(r, e)) return std::nullopt;
  }
  if (!r.count(n)) return std::nullopt;
  s.reads.resize(n);
  for (auto& e : s.reads) {
    if (!get_effect(r, e)) return std::nullopt;
  }
  if (!r.count(n)) return std::nullopt;
  for (uint32_t i = 0; i < n; ++i) {
    std::string array;
    ipa::PortableArrayFacts facts;
    if (!r.str(array) || !get_facts(r, facts)) return std::nullopt;
    s.end_facts.emplace(std::move(array), std::move(facts));
  }
  bool has_return = false;
  if (!r.boolean(has_return)) return std::nullopt;
  if (has_return) {
    s.return_value.emplace();
    if (!get_range(r, *s.return_value)) return std::nullopt;
  }
  if (!r.u64(s.entry_fingerprint)) return std::nullopt;
  if (!r.done()) return std::nullopt;  // trailing garbage is corruption too
  return s;
}

uint64_t payload_checksum(std::string_view bytes) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

// --- SummaryStore ------------------------------------------------------------

namespace {

constexpr char kMagic[4] = {'S', 'S', 'P', 'S'};
// v2: injective facts carry the from_chain (affine-injective provenance)
// flag. v1 stores quarantine wholesale on open, per the robustness contract.
constexpr uint32_t kVersion = 2;

// Journal record types ("<path>.journal" sidecar, little-endian framing:
// u8 type | u32 body_size | u64 body_fnv | body).
constexpr char kJournalAdd = 'A';    // body: key.hi u64 | key.lo u64 | gen u64 | payload
constexpr char kJournalTouch = 'T';  // body: key.hi u64 | key.lo u64 | gen u64

void put_file_u32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}
void put_file_u64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

uint32_t get_raw_u32(std::string_view bytes, size_t pos) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes[pos + i])) << (8 * i);
  }
  return v;
}
uint64_t get_raw_u64(std::string_view bytes, size_t pos) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes[pos + i])) << (8 * i);
  }
  return v;
}

// Frames one journal record: type byte, body length, FNV-1a of the body.
void put_journal_record(std::string& out, char type, const std::string& body) {
  out.push_back(type);
  put_file_u32(out, static_cast<uint32_t>(body.size()));
  put_file_u64(out, payload_checksum(body));
  out.append(body);
}

bool write_fully(int fd, const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

SummaryStore::SummaryStore(std::string path, StoreOptions options)
    : path_(std::move(path)), options_(options) {}

SummaryStore::~SummaryStore() {
  if (journal_fd_ >= 0) ::close(journal_fd_);
}

bool SummaryStore::open() {
  SSPAR_FAULTPOINT("store.open.pre_load");
  std::string contents;
  {
    std::ifstream in(path_, std::ios::binary);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      contents = buffer.str();
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  bool ok = true;
  // A missing or freshly touched base file just starts empty.
  if (!contents.empty() && !load_file(contents)) {
    // Whole-file reject (bad magic/version): quarantine so the next flush can
    // lay down a fresh store without fighting the corrupt bytes.
    records_.clear();
    stats_.rejected += 1;
    std::rename(path_.c_str(), (path_ + ".corrupt").c_str());
    ok = false;
  }
  SSPAR_FAULTPOINT("store.open.pre_replay");
  if (options_.journal) replay_journal_locked();
  return ok;
}

bool SummaryStore::load_file(const std::string& contents) {
  Reader r(contents);
  char magic[4] = {};
  for (char& c : magic) {
    uint8_t b = 0;
    if (!r.u8(b)) return false;
    c = static_cast<char>(b);
  }
  if (magic[0] != kMagic[0] || magic[1] != kMagic[1] || magic[2] != kMagic[2] ||
      magic[3] != kMagic[3]) {
    return false;
  }
  uint32_t version = 0;
  if (!r.u32(version) || version != kVersion) return false;
  uint64_t next_generation = 0;
  if (!r.u64(next_generation)) return false;
  generation_ = next_generation > 0 ? next_generation : 1;
  // Records: load until the buffer ends cleanly or a record is truncated /
  // checksum-mismatched — keep everything before the first bad record.
  while (!r.done()) {
    ipa::CacheKey key;
    uint64_t generation = 0;
    uint32_t payload_size = 0;
    uint64_t checksum = 0;
    std::string payload;
    if (!r.u64(key.hi) || !r.u64(key.lo) || !r.u64(generation) ||
        !r.u32(payload_size) || !r.u64(checksum)) {
      stats_.rejected += 1;
      break;
    }
    // Reuse the length-prefixed string reader by re-encoding: payload_size
    // was already consumed, so read the raw bytes directly.
    payload.resize(payload_size);
    {
      // Reader has no raw-bytes API; emulate with per-byte reads kept simple
      // (load happens once per process, not per request).
      bool ok = true;
      for (uint32_t i = 0; i < payload_size; ++i) {
        uint8_t b = 0;
        if (!r.u8(b)) {
          ok = false;
          break;
        }
        payload[i] = static_cast<char>(b);
      }
      if (!ok) {
        stats_.rejected += 1;
        break;
      }
    }
    if (payload_checksum(payload) != checksum || !deserialize_summary(payload)) {
      // Checksum or structural corruption: drop this record, keep loading —
      // the framing was intact, so subsequent records are still addressable.
      stats_.rejected += 1;
      continue;
    }
    records_[key] = Record{std::move(payload), generation};
    stats_.loaded += 1;
  }
  return true;
}

void SummaryStore::replay_journal_locked() {
  const std::string jpath = path_ + ".journal";
  std::string contents;
  {
    std::ifstream in(jpath, std::ios::binary);
    if (!in) return;  // no journal: nothing absorbed since the last flush
    std::ostringstream buffer;
    buffer << in.rdbuf();
    contents = buffer.str();
  }
  constexpr size_t kFrame = 1 + 4 + 8;  // type | body_size | body_fnv
  constexpr size_t kKeyGen = 8 + 8 + 8;  // key.hi | key.lo | generation
  size_t pos = 0;
  size_t good = 0;  // bytes up to and including the last intact record
  uint64_t max_generation = 0;
  while (pos < contents.size()) {
    if (contents.size() - pos < kFrame) break;  // torn frame header
    const char type = contents[pos];
    const uint32_t body_size = get_raw_u32(contents, pos + 1);
    const uint64_t body_fnv = get_raw_u64(contents, pos + 5);
    if (type != kJournalAdd && type != kJournalTouch) break;
    if (contents.size() - pos - kFrame < body_size) break;  // torn body
    std::string_view body(contents.data() + pos + kFrame, body_size);
    if (payload_checksum(body) != body_fnv) break;  // corrupt record
    if (body_size < kKeyGen || (type == kJournalTouch && body_size != kKeyGen)) break;
    ipa::CacheKey key;
    key.hi = get_raw_u64(body, 0);
    key.lo = get_raw_u64(body, 8);
    const uint64_t generation = get_raw_u64(body, 16);
    max_generation = std::max(max_generation, generation);
    if (type == kJournalAdd) {
      // Counted whether or not the key is already in the base file: a
      // checkpoint that completed its rename but died before truncating the
      // journal leaves every record duplicated, and the count must not
      // depend on which side of that instant the crash landed.
      stats_.journal_replayed += 1;
      std::string payload(body.substr(kKeyGen));
      if (records_.find(key) == records_.end() && deserialize_summary(payload)) {
        records_.emplace(key, Record{std::move(payload), generation});
      }
    } else {
      auto it = records_.find(key);
      if (it != records_.end() && generation > it->second.generation) {
        it->second.generation = generation;
      }
    }
    pos += kFrame + body_size;
    good = pos;
  }
  journal_bytes_ = good;
  if (good != contents.size()) {
    // Torn or corrupt tail: drop it at the last good record and truncate the
    // file so later appends never land after garbage.
    stats_.rejected += 1;
    ::truncate(jpath.c_str(), static_cast<off_t>(good));
  }
  // Replayed generations must stay in the past relative to this run's.
  if (max_generation >= generation_) generation_ = max_generation + 1;
}

bool SummaryStore::ensure_journal_locked() {
  if (journal_fd_ >= 0) return true;
  journal_fd_ = ::open((path_ + ".journal").c_str(),
                       O_CREAT | O_WRONLY | O_APPEND | O_CLOEXEC, 0644);
  return journal_fd_ >= 0;
}

void SummaryStore::append_journal_locked(const std::string& batch, size_t record_count) {
  if (journal_failed_) return;  // degraded mode: commit() full-flushes instead
  if (SSPAR_FAULTPOINT_FAIL("store.journal.pre_append") || !ensure_journal_locked() ||
      !write_fully(journal_fd_, batch)) {
    journal_failed_ = true;
    return;
  }
  SSPAR_FAULTPOINT("store.journal.pre_sync");
  if (::fsync(journal_fd_) != 0) {
    journal_failed_ = true;
    return;
  }
  SSPAR_FAULTPOINT("store.journal.post_append");
  journal_bytes_ += batch.size();
  stats_.journal_appended += record_count;
}

size_t SummaryStore::preload(ipa::CrossProgramCache& cache) {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t inserted = 0;
  for (const auto& [key, record] : records_) {
    auto summary = deserialize_summary(record.payload);
    if (!summary) continue;  // open() validated these; belt and braces
    cache.insert_preloaded(key, std::move(*summary));
    ++inserted;
  }
  return inserted;
}

void SummaryStore::absorb(const ipa::CrossProgramCache& cache) {
  std::vector<ipa::CrossProgramCache::Snapshot> entries = cache.snapshot();
  std::lock_guard<std::mutex> lock(mutex_);
  std::string batch;       // WAL records for this absorb, one fsync at the end
  size_t batch_count = 0;  // (journal mode only; stays empty otherwise)
  for (const auto& entry : entries) {
    auto it = records_.find(entry.key);
    if (it != records_.end()) {
      // First writer wins: never overwrite the payload. A key that was HIT
      // this run is warm — bump its generation so eviction spares it.
      if (entry.hits > 0) {
        it->second.generation = generation_;
        if (options_.journal) {
          std::string body;
          put_file_u64(body, entry.key.hi);
          put_file_u64(body, entry.key.lo);
          put_file_u64(body, generation_);
          put_journal_record(batch, kJournalTouch, body);
          batch_count += 1;
        }
      }
      continue;
    }
    if (!entry.summary) continue;
    std::string payload = serialize_summary(*entry.summary);
    if (options_.journal) {
      std::string body;
      put_file_u64(body, entry.key.hi);
      put_file_u64(body, entry.key.lo);
      put_file_u64(body, generation_);
      body.append(payload);
      put_journal_record(batch, kJournalAdd, body);
      batch_count += 1;
    }
    records_.emplace(entry.key, Record{std::move(payload), generation_});
    stats_.absorbed += 1;
  }
  if (!batch.empty()) append_journal_locked(batch, batch_count);
}

bool SummaryStore::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  // Evict down to the cap: lowest generation (coldest) first, key order
  // breaking ties so the survivor set is deterministic.
  if (records_.size() > options_.max_entries) {
    std::vector<std::pair<uint64_t, ipa::CacheKey>> order;
    order.reserve(records_.size());
    for (const auto& [key, record] : records_) order.emplace_back(record.generation, key);
    std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
      return a.first != b.first ? a.first < b.first : a.second < b.second;
    });
    size_t excess = records_.size() - options_.max_entries;
    for (size_t i = 0; i < excess; ++i) {
      records_.erase(order[i].second);
      stats_.evicted += 1;
    }
  }
  std::string out;
  out.append(kMagic, 4);
  put_file_u32(out, kVersion);
  put_file_u64(out, generation_ + 1);  // the NEXT run's generation
  for (const auto& [key, record] : records_) {
    put_file_u64(out, key.hi);
    put_file_u64(out, key.lo);
    put_file_u64(out, record.generation);
    put_file_u32(out, static_cast<uint32_t>(record.payload.size()));
    put_file_u64(out, payload_checksum(record.payload));
    out.append(record.payload);
  }
  if (SSPAR_FAULTPOINT_FAIL("store.flush.pre_write")) return false;
  const std::string tmp = path_ + ".tmp";
  // POSIX fd, not ofstream: the tmp file must be fsync'd BEFORE the rename,
  // or a crash right after the rename can publish a file whose bytes never
  // reached disk.
  int fd = ::open(tmp.c_str(), O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  if (!write_fully(fd, out)) {
    ::close(fd);
    std::remove(tmp.c_str());
    return false;
  }
  if (SSPAR_FAULTPOINT_FAIL("store.flush.pre_sync") || ::fsync(fd) != 0) {
    ::close(fd);
    std::remove(tmp.c_str());
    return false;
  }
  ::close(fd);
  if (SSPAR_FAULTPOINT_FAIL("store.flush.pre_rename") ||
      std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  SSPAR_FAULTPOINT("store.flush.post_rename");
  stats_.flushed = records_.size();
  if (options_.journal) {
    // Every journaled record is in the base file now; an O_APPEND fd keeps
    // appending correctly after the truncate.
    if (journal_fd_ >= 0) {
      ::ftruncate(journal_fd_, 0);
    } else {
      ::truncate((path_ + ".journal").c_str(), 0);  // ENOENT is fine
    }
    journal_bytes_ = 0;
  }
  return true;
}

bool SummaryStore::commit() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (options_.journal && !journal_failed_ &&
        records_.size() <= options_.max_entries &&
        journal_bytes_ < options_.journal_checkpoint_bytes) {
      // The WAL batches absorb() fsync'd already make this run durable; the
      // full O(store) rewrite waits for a checkpoint trigger.
      return true;
    }
  }
  return flush();
}

size_t SummaryStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

SummaryStore::Stats SummaryStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace sspar::store
